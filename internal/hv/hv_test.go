package hv

import (
	"strings"
	"testing"

	"ptlsim/internal/mem"
	"ptlsim/internal/stats"
	"ptlsim/internal/uops"
	"ptlsim/internal/vm"
)

// testDomain builds a 2-VCPU domain with one mapped scratch page so
// hypercalls that touch guest memory can run.
func testDomain(t *testing.T) (*Domain, *mem.AddressSpace) {
	t.Helper()
	pm := mem.NewPhysMem()
	m := &vm.Machine{PM: pm}
	d := NewDomain(m, 2, stats.NewTree())
	as := mem.NewAddressSpace(pm)
	if err := as.Map(0x1000, pm.AllocPage(), mem.PTEWritable|mem.PTEUser); err != nil {
		t.Fatal(err)
	}
	for _, c := range d.VCPUs {
		c.CR3 = as.CR3()
		c.Kernel = true
	}
	return d, as
}

// hc performs a hypercall with the given registers.
func hc(t *testing.T, d *Domain, c *vm.Context, op, a1, a2, a3 uint64) uint64 {
	t.Helper()
	c.Regs[uops.RegRAX] = op
	c.Regs[uops.RegRDI] = a1
	c.Regs[uops.RegRSI] = a2
	c.Regs[uops.RegRDX] = a3
	if f := d.Hypercall(c); f != uops.FaultNone {
		t.Fatalf("hypercall %d faulted: %v", op, f)
	}
	return c.Regs[uops.RegRAX]
}

func TestConsoleWrite(t *testing.T) {
	d, _ := testDomain(t)
	c := d.VCPUs[0]
	if f := c.WriteVirtBytes(0x1000, []byte("hello hv")); f != uops.FaultNone {
		t.Fatal(f)
	}
	n := hc(t, d, c, HcConsoleWrite, 0x1000, 8, 0)
	if n != 8 || d.Console() != "hello hv" {
		t.Fatalf("n=%d console=%q", n, d.Console())
	}
}

func TestEntryRegistration(t *testing.T) {
	d, _ := testDomain(t)
	c := d.VCPUs[0]
	hc(t, d, c, HcSetTrapEntry, 0xAAA, 0, 0)
	hc(t, d, c, HcSetSyscall, 0xBBB, 0, 0)
	hc(t, d, c, HcStackSwitch, 0xCCC, 0, 0)
	if c.TrapEntry != 0xAAA || c.SyscallEntry != 0xBBB || c.KernelRSP != 0xCCC {
		t.Fatalf("entries: %#x %#x %#x", c.TrapEntry, c.SyscallEntry, c.KernelRSP)
	}
}

func TestOneShotTimer(t *testing.T) {
	d, _ := testDomain(t)
	c := d.VCPUs[0]
	d.Tick(100)
	hc(t, d, c, HcSetTimer, 500, 0, 0) // fires at 600
	d.Tick(599)
	if d.EventPending(c) {
		t.Fatal("timer fired early")
	}
	c.Running = false
	d.Tick(600)
	if !d.EventPending(c) {
		t.Fatal("timer did not fire")
	}
	if !c.Running {
		t.Fatal("timer event must wake the VCPU")
	}
	// Ack clears.
	mask := hc(t, d, c, HcEventAck, 0, 0, 0)
	if mask&(1<<ChanTimer) == 0 {
		t.Fatalf("ack mask %#x", mask)
	}
	if d.EventPending(c) {
		t.Fatal("ack did not clear pending")
	}
	// One-shot: no refire.
	d.Tick(2000)
	if d.EventPending(c) {
		t.Fatal("one-shot timer refired")
	}
}

func TestPeriodicTimer(t *testing.T) {
	d, _ := testDomain(t)
	c := d.VCPUs[0]
	hc(t, d, c, HcSetPeriodic, 100, 0, 0)
	fires := 0
	for cyc := uint64(1); cyc <= 1000; cyc++ {
		d.Tick(cyc)
		if d.EventPending(c) {
			fires++
			hc(t, d, c, HcEventAck, 0, 0, 0)
		}
	}
	if fires != 10 {
		t.Fatalf("periodic fired %d times in 1000 cycles at period 100", fires)
	}
}

func TestNextTimerDeadline(t *testing.T) {
	d, _ := testDomain(t)
	c := d.VCPUs[0]
	if d.NextTimerDeadline() != 0 {
		t.Fatal("no timers armed")
	}
	d.Tick(50)
	hc(t, d, c, HcSetTimer, 100, 0, 0)
	
	if ddl := d.NextTimerDeadline(); ddl != 150 {
		t.Fatalf("deadline = %d, want 150", ddl)
	}
}

func TestEventSendIPI(t *testing.T) {
	d, _ := testDomain(t)
	c0, c1 := d.VCPUs[0], d.VCPUs[1]
	c1.Running = false
	hc(t, d, c0, HcEventSend, 1, ChanIPI, 0)
	if !d.EventPending(c1) || !c1.Running {
		t.Fatal("IPI not delivered/woken")
	}
	if d.EventPending(c0) {
		t.Fatal("IPI leaked to sender")
	}
	// Bad target.
	if ret := hc(t, d, c0, HcEventSend, 99, 0, 0); ret != ^uint64(0) {
		t.Fatalf("bad vcpu accepted: %#x", ret)
	}
}

func TestNewBasePtrValidation(t *testing.T) {
	d, as := testDomain(t)
	c := d.VCPUs[0]
	gen := c.FlushGen
	hc(t, d, c, HcNewBasePtr, as.CR3(), 0, 0)
	if c.CR3 != as.CR3() || c.FlushGen == gen {
		t.Fatal("cr3 switch did not apply/flush")
	}
	// Unallocated frame rejected.
	if ret := hc(t, d, c, HcNewBasePtr, 0xDEAD000, 0, 0); ret != ^uint64(0) {
		t.Fatalf("bogus cr3 accepted: %#x", ret)
	}
}

func TestMMUUpdate(t *testing.T) {
	d, as := testDomain(t)
	c := d.VCPUs[0]
	// Write a PTE slot through the hypercall.
	leaf, err := as.LeafPTEAddr(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	hc(t, d, c, HcMMUUpdate, leaf, 0, 0) // unmap the page
	if _, f := c.ReadVirt(0x1000, 8); f == uops.FaultNone {
		t.Fatal("mmu_update did not take effect")
	}
	if ret := hc(t, d, c, HcMMUUpdate, 0xDEAD000, 7, 0); ret != ^uint64(0) {
		t.Fatal("update of unallocated frame accepted")
	}
}

func TestShutdown(t *testing.T) {
	d, _ := testDomain(t)
	c := d.VCPUs[0]
	hc(t, d, c, HcShutdown, 42, 0, 0)
	if !d.ShutdownReq || d.ShutdownReason != 42 {
		t.Fatal("shutdown not recorded")
	}
	for _, v := range d.VCPUs {
		if v.Running {
			t.Fatal("VCPUs still running after shutdown")
		}
	}
}

func TestVCPUUp(t *testing.T) {
	d, _ := testDomain(t)
	c0, c1 := d.VCPUs[0], d.VCPUs[1]
	c0.TrapEntry = 0x111
	c0.SyscallEntry = 0x222
	c1.Running = false
	hc(t, d, c0, HcVCPUUp, 1, 0x5000, 0x9000)
	if !c1.Running || c1.RIP != 0x5000 || c1.Regs[uops.RegRSP] != 0x9000 {
		t.Fatalf("AP state: run=%v rip=%#x rsp=%#x", c1.Running, c1.RIP, c1.Regs[uops.RegRSP])
	}
	if c1.CR3 != c0.CR3 || c1.TrapEntry != 0x111 || c1.SyscallEntry != 0x222 {
		t.Fatal("AP did not inherit BSP configuration")
	}
	// Self-up rejected.
	if ret := hc(t, d, c0, HcVCPUUp, 0, 0, 0); ret != ^uint64(0) {
		t.Fatal("self VCPUUp accepted")
	}
}

func TestGetVCPUIDAndCycles(t *testing.T) {
	d, _ := testDomain(t)
	if hc(t, d, d.VCPUs[1], HcGetVCPUID, 0, 0, 0) != 1 {
		t.Fatal("vcpu id wrong")
	}
	d.Tick(777)
	if hc(t, d, d.VCPUs[0], HcGetCycles, 0, 0, 0) != 777 {
		t.Fatal("cycle counter wrong")
	}
}

func TestBlockDeviceDMA(t *testing.T) {
	d, _ := testDomain(t)
	c := d.VCPUs[0]
	d.Disk = make([]byte, 8*512)
	for i := range d.Disk {
		d.Disk[i] = byte(i)
	}
	d.BlockLat = 100
	d.Tick(10)
	hc(t, d, c, HcBlockRead, 1, 0x1000, 1) // sector 1 -> va 0x1000
	d.Tick(50)
	if d.EventPending(c) {
		t.Fatal("DMA completed before its latency")
	}
	d.Tick(110)
	if !d.EventPending(c) {
		t.Fatal("DMA completion event missing")
	}
	v, f := c.ReadVirt(0x1000, 8)
	if f != uops.FaultNone {
		t.Fatal(f)
	}
	// sector 1 starts at disk byte 512 -> 0x00,0x01.. pattern offset.
	if byte(v) != d.Disk[512] {
		t.Fatalf("DMA data wrong: %#x", v)
	}
	// Write path.
	_ = c.WriteVirt(0x1080, 0xCAFEBABE, 8)
	hc(t, d, c, HcBlockWrite, 4, 0x1080, 1)
	d.Tick(300)
	if d.Disk[4*512] != 0xBE {
		t.Fatalf("block write did not land: %#x", d.Disk[4*512])
	}
	// Out-of-range rejected.
	if ret := hc(t, d, c, HcBlockRead, 7, 0x1000, 5); ret != ^uint64(0) {
		t.Fatal("OOB block read accepted")
	}
}

func TestReadTSCUsesOffset(t *testing.T) {
	d, _ := testDomain(t)
	c := d.VCPUs[0]
	d.Tick(1000)
	c.TSCOffset = 234
	if tsc := d.ReadTSC(c); tsc != 1234 {
		t.Fatalf("tsc = %d", tsc)
	}
}

func TestCpuidLeaves(t *testing.T) {
	d, _ := testDomain(t)
	c := d.VCPUs[0]
	c.Regs[uops.RegRAX] = 0
	d.Cpuid(c)
	if c.Regs[uops.RegRAX] != 1 {
		t.Fatal("leaf 0 max leaf wrong")
	}
	c.Regs[uops.RegRAX] = 1
	d.Cpuid(c)
	if c.Regs[uops.RegRBX]>>16 != 2 {
		t.Fatal("leaf 1 vcpu count wrong")
	}
	c.Regs[uops.RegRAX] = 99
	d.Cpuid(c)
	if c.Regs[uops.RegRAX] != 0 {
		t.Fatal("unknown leaf should zero")
	}
}

func TestPtlcallCommandCapture(t *testing.T) {
	d, _ := testDomain(t)
	c := d.VCPUs[0]
	cmd := "-run -stopinsns 10m : -native"
	if f := c.WriteVirtBytes(0x1000, []byte(cmd)); f != uops.FaultNone {
		t.Fatal(f)
	}
	c.Regs[uops.RegRDI] = 0x1000
	c.Regs[uops.RegRSI] = uint64(len(cmd))
	d.Ptlcall(c)
	cmds := d.TakeCommands()
	if len(cmds) != 1 || cmds[0] != cmd {
		t.Fatalf("commands = %q", cmds)
	}
	if len(d.TakeCommands()) != 0 {
		t.Fatal("TakeCommands must drain")
	}
	// Null pointer form records a bare switch.
	c.Regs[uops.RegRDI] = 0
	d.Ptlcall(c)
	if cmds := d.TakeCommands(); len(cmds) != 1 || !strings.Contains(cmds[0], "-switch") {
		t.Fatalf("bare ptlcall = %q", cmds)
	}
}

func TestUnknownHypercallFaults(t *testing.T) {
	d, _ := testDomain(t)
	c := d.VCPUs[0]
	c.Regs[uops.RegRAX] = 9999
	if f := d.Hypercall(c); f != uops.FaultGP {
		t.Fatalf("unknown hypercall: %v", f)
	}
}
