package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ptlsim/internal/jobd"
	"ptlsim/internal/supervisor"
)

// fakeNode is an in-memory stand-in for a ptlserve daemon: it admits
// jobs (with idempotency dedup and the epoch fence), "runs" them on a
// timer, and can be frozen — handlers hang until the client's deadline
// fires, while admitted jobs keep completing underneath, which is
// exactly what a partitioned-but-alive daemon looks like.
type fakeNode struct {
	mu        sync.Mutex
	nextID    int
	jobs      map[string]*jobd.Status
	idem      map[string]string
	cellEpoch map[string]int64

	frozen     atomic.Bool
	abortLeft  atomic.Int32 // kill the connection for this many POST /jobs
	schemaHash uint64
	runFor     time.Duration
	fnvFn      func(spec jobd.Spec) uint64
	srv        *httptest.Server
}

func newFakeNode(runFor time.Duration) *fakeNode {
	n := &fakeNode{
		jobs:       map[string]*jobd.Status{},
		idem:       map[string]string{},
		cellEpoch:  map[string]int64{},
		schemaHash: 0xfeedface,
		runFor:     runFor,
		fnvFn:      func(spec jobd.Spec) uint64 { return spec.ConfigKey() },
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", n.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", n.handleJob)
	mux.HandleFunc("GET /healthz", n.handleHealthz)
	mux.HandleFunc("GET /version", n.handleVersion)
	n.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.frozen.Load() {
			// Stall like a partition: the client's deadline is what ends
			// the exchange. The 2s cap only unsticks handlers whose
			// context cancellation was never delivered, so Server.Close
			// cannot deadlock at test teardown.
			select {
			case <-r.Context().Done():
			case <-time.After(2 * time.Second):
			}
			http.Error(w, "frozen", http.StatusServiceUnavailable)
			return
		}
		mux.ServeHTTP(w, r)
	}))
	return n
}

func (n *fakeNode) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if n.abortLeft.Load() > 0 && n.abortLeft.Add(-1) >= 0 {
		// Kill the exchange before any state changes: from the
		// dispatcher's side this submit is ambiguous — it cannot know
		// whether the grant landed. (net/http auto-retries aborted
		// requests bearing an Idempotency-Key when the connection was
		// reused, so more than one abort may be consumed per submit.)
		panic(http.ErrAbortHandler)
	}
	var spec jobd.Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	n.mu.Lock()
	if key := r.Header.Get("Idempotency-Key"); key != "" {
		if id, ok := n.idem[key]; ok {
			st := *n.jobs[id]
			n.mu.Unlock()
			w.WriteHeader(http.StatusOK)
			json.NewEncoder(w).Encode(st)
			return
		}
	}
	if ck := spec.CellKey(); ck != "" && spec.Epoch < n.cellEpoch[ck] {
		n.mu.Unlock()
		http.Error(w, fmt.Sprintf(`{"error":"stale epoch %d"}`, spec.Epoch), http.StatusConflict)
		return
	}
	if ck := spec.CellKey(); ck != "" && spec.Epoch > n.cellEpoch[ck] {
		n.cellEpoch[ck] = spec.Epoch
	}
	n.nextID++
	id := fmt.Sprintf("%04d", n.nextID)
	st := &jobd.Status{ID: id, State: jobd.StateRunning, Spec: spec}
	n.jobs[id] = st
	if key := r.Header.Get("Idempotency-Key"); key != "" {
		n.idem[key] = id
	}
	cp := *st
	n.mu.Unlock()

	time.AfterFunc(n.runFor, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		st.State = jobd.StateDone
		st.Result = &jobd.Result{Cycles: 1000, Insns: 500, ConsoleFNV: n.fnvFn(spec)}
	})
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(cp)
}

func (n *fakeNode) handleJob(w http.ResponseWriter, r *http.Request) {
	n.mu.Lock()
	st, ok := n.jobs[r.PathValue("id")]
	var cp jobd.Status
	if ok {
		cp = *st
	}
	n.mu.Unlock()
	if !ok {
		http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
		return
	}
	json.NewEncoder(w).Encode(cp)
}

func (n *fakeNode) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "ok")
}

func (n *fakeNode) handleVersion(w http.ResponseWriter, r *http.Request) {
	json.NewEncoder(w).Encode(jobd.Version{Version: "test", Go: "test", SchemaHash: n.schemaHash})
}

// testCampaign is a tiny grid: len(seeds) points × repeats replicas.
func testCampaign(seeds []int64, repeats int) *Campaign {
	return &Campaign{
		Name:    "camp",
		Base:    jobd.Spec{Scale: "small"},
		Seeds:   seeds,
		Repeats: repeats,
	}
}

// fastConfig is a dispatcher tuned for test wall clock: millisecond
// ticks, sub-second leases, single-try submits with tight deadlines.
func fastConfig(journal *supervisor.Journal, nodes ...*fakeNode) Config {
	cfg := Config{
		LeaseTTL:     500 * time.Millisecond,
		PollInterval: 20 * time.Millisecond,
		DownAfter:    2,
		Journal:      journal,
		Submit:       NewClient(ClientConfig{Timeout: 250 * time.Millisecond, Retries: -1, BaseBackoff: 10 * time.Millisecond}),
		Poll:         NewClient(ClientConfig{Timeout: 250 * time.Millisecond, Retries: -1}),
	}
	for i, n := range nodes {
		cfg.Nodes = append(cfg.Nodes, Node{Name: fmt.Sprintf("node%d", i+1), URL: n.srv.URL})
	}
	return cfg
}

func journalEvents(t *testing.T, buf *bytes.Buffer) map[string]int {
	t.Helper()
	entries, err := supervisor.ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, e := range entries {
		counts[e.Event]++
	}
	return counts
}

// verdictsPerCell asserts the fencing invariant the whole design
// exists for: exactly one recorded verdict per cell, ever.
func verdictsPerCell(t *testing.T, r *Report) map[string]Verdict {
	t.Helper()
	out := map[string]Verdict{}
	for _, v := range r.Verdicts {
		if _, dup := out[v.Cell]; dup {
			t.Fatalf("cell %s has more than one verdict", v.Cell)
		}
		out[v.Cell] = v
	}
	return out
}

// TestCampaignHappyPath: a healthy fleet completes the whole grid with
// one lease per cell, no steals, no fences, and replicas agreeing.
func TestCampaignHappyPath(t *testing.T) {
	a, b := newFakeNode(30*time.Millisecond), newFakeNode(30*time.Millisecond)
	defer a.srv.Close()
	defer b.srv.Close()
	var buf bytes.Buffer
	d, err := NewDispatcher(fastConfig(supervisor.NewJournal(&buf), a, b))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(t.Context(), testCampaign([]int64{1, 2, 3}, 2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cells != 6 || rep.Done != 6 || rep.Failed != 0 {
		t.Fatalf("report %+v", rep)
	}
	if rep.Steals != 0 || rep.Fences != 0 || len(rep.Mismatches) != 0 {
		t.Fatalf("healthy fleet saw chaos accounting: %+v", rep)
	}
	verdicts := verdictsPerCell(t, rep)
	nodesUsed := map[string]bool{}
	for _, v := range verdicts {
		nodesUsed[v.Node] = true
		if v.ConsoleFNV == 0 {
			t.Fatalf("verdict missing fnv: %+v", v)
		}
	}
	if len(nodesUsed) != 2 {
		t.Fatalf("work was not spread: %v", nodesUsed)
	}
	ev := journalEvents(t, &buf)
	if ev[supervisor.EventCampaignStart] != 1 || ev[supervisor.EventCampaignDone] != 1 ||
		ev[supervisor.EventCellDone] != 6 || ev[supervisor.EventLeaseGrant] != 6 {
		t.Fatalf("journal events %v", ev)
	}
}

// TestStealAndFence: freeze one node mid-campaign. Its leases expire
// and are stolen to the survivor; when it thaws, the jobs it finished
// in the dark are fenced at collection — every cell still ends with
// exactly one verdict.
func TestStealAndFence(t *testing.T) {
	a, b := newFakeNode(400*time.Millisecond), newFakeNode(400*time.Millisecond)
	defer a.srv.Close()
	defer b.srv.Close()
	var buf bytes.Buffer
	d, err := NewDispatcher(fastConfig(supervisor.NewJournal(&buf), a, b))
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var rep *Report
	var runErr error
	go func() {
		defer close(done)
		rep, runErr = d.Run(t.Context(), testCampaign([]int64{1, 2, 3, 4}, 1))
	}()
	// Let the first assignments land on both nodes, then freeze b long
	// enough for its leases to expire and be stolen.
	time.Sleep(120 * time.Millisecond)
	b.frozen.Store(true)
	time.Sleep(900 * time.Millisecond)
	b.frozen.Store(false)
	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}

	if rep.Done != 4 || rep.Failed != 0 {
		t.Fatalf("report %+v", rep)
	}
	if rep.Steals == 0 {
		t.Fatal("freezing a node stole no leases")
	}
	if rep.Fences == 0 {
		t.Fatal("the thawed node's finished jobs were not fenced")
	}
	verdicts := verdictsPerCell(t, rep)
	if len(verdicts) != 4 {
		t.Fatalf("%d verdicts, want 4", len(verdicts))
	}
	ev := journalEvents(t, &buf)
	if ev[supervisor.EventNodeDown] == 0 || ev[supervisor.EventNodeUp] == 0 {
		t.Fatalf("journal events %v: missing node transitions", ev)
	}
	if ev[supervisor.EventLeaseSteal] != rep.Steals || ev[supervisor.EventFenceReject] != rep.Fences {
		t.Fatalf("journal events %v disagree with report %+v", ev, rep)
	}
}

// TestMixedVersionRefused: two nodes disagreeing on the protocol
// schema hash kill the campaign before a single job is submitted.
func TestMixedVersionRefused(t *testing.T) {
	a, b := newFakeNode(10*time.Millisecond), newFakeNode(10*time.Millisecond)
	defer a.srv.Close()
	defer b.srv.Close()
	b.schemaHash = 0xdeadbeef

	d, err := NewDispatcher(fastConfig(nil, a, b))
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.Run(t.Context(), testCampaign([]int64{1}, 1))
	if err == nil || !strings.Contains(err.Error(), "mixed-version") {
		t.Fatalf("err = %v, want mixed-version refusal", err)
	}
	if len(a.jobs) != 0 || len(b.jobs) != 0 {
		t.Fatal("jobs were submitted to a refused fleet")
	}
}

// TestUnreachableNodeDegrades: a node that is dead at campaign start
// is marked down and the sweep completes on the survivors.
func TestUnreachableNodeDegrades(t *testing.T) {
	a := newFakeNode(20 * time.Millisecond)
	defer a.srv.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()

	var buf bytes.Buffer
	cfg := fastConfig(supervisor.NewJournal(&buf), a)
	cfg.Nodes = append(cfg.Nodes, Node{Name: "corpse", URL: deadURL})
	d, err := NewDispatcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(t.Context(), testCampaign([]int64{1, 2}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done != 2 {
		t.Fatalf("report %+v", rep)
	}
	for _, v := range rep.Verdicts {
		if v.Node == "corpse" {
			t.Fatalf("verdict from the dead node: %+v", v)
		}
	}
	if ev := journalEvents(t, &buf); ev[supervisor.EventNodeDown] == 0 {
		t.Fatalf("journal %v: dead node not reported down", ev)
	}
}

// TestDaemonFenceAdvancesEpoch: a daemon whose fence is ahead of the
// dispatcher (a prior dispatcher run got further) answers 409; the
// dispatcher counts the fence and advances its epoch past the barrier
// instead of retrying into it.
func TestDaemonFenceAdvancesEpoch(t *testing.T) {
	a := newFakeNode(20 * time.Millisecond)
	defer a.srv.Close()
	a.cellEpoch["camp/00000"] = 3

	var buf bytes.Buffer
	d, err := NewDispatcher(fastConfig(supervisor.NewJournal(&buf), a))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(t.Context(), testCampaign([]int64{1}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done != 1 || rep.Fences != 2 {
		t.Fatalf("report %+v, want done=1 after 2 fenced epochs", rep)
	}
	if v := rep.Verdicts[0]; v.Epoch != 3 {
		t.Fatalf("verdict epoch %d, want 3", v.Epoch)
	}
}

// TestAmbiguousGrantFenced: a submit that dies at the transport level
// is ambiguous — the grant may or may not have landed — so the cell is
// re-leased at the next epoch and the ghost epoch is resolved through
// its idempotency key: either the daemon fences the stale re-admission
// (409) or the ghost job is tracked and fenced when it finishes. Never
// two verdicts, and never a verdict from the ghost.
func TestAmbiguousGrantFenced(t *testing.T) {
	a := newFakeNode(60 * time.Millisecond)
	defer a.srv.Close()
	a.abortLeft.Store(2) // survive net/http's own idempotent-retry too

	var buf bytes.Buffer
	d, err := NewDispatcher(fastConfig(supervisor.NewJournal(&buf), a))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(t.Context(), testCampaign([]int64{1}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done != 1 || rep.Failed != 0 {
		t.Fatalf("report %+v", rep)
	}
	verdicts := verdictsPerCell(t, rep)
	if v := verdicts["00000"]; v.Epoch < 2 {
		t.Fatalf("verdict epoch %d, want ≥ 2 (earlier epochs were ghosts)", v.Epoch)
	}
	if rep.Fences == 0 {
		t.Fatal("no ghost epoch was ever fenced")
	}
}

// TestReplicaMismatchDetected: nodes that disagree on a replica's
// console FNV are a determinism violation the report must surface.
func TestReplicaMismatchDetected(t *testing.T) {
	a, b := newFakeNode(20*time.Millisecond), newFakeNode(20*time.Millisecond)
	defer a.srv.Close()
	defer b.srv.Close()
	b.fnvFn = func(spec jobd.Spec) uint64 { return spec.ConfigKey() + 1 }

	var buf bytes.Buffer
	d, err := NewDispatcher(fastConfig(supervisor.NewJournal(&buf), a, b))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(t.Context(), testCampaign([]int64{1}, 2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done != 2 {
		t.Fatalf("report %+v", rep)
	}
	if len(rep.Mismatches) != 1 {
		t.Fatalf("mismatches %v, want exactly one", rep.Mismatches)
	}
	entries, _ := supervisor.ReadJournal(bytes.NewReader(buf.Bytes()))
	found := false
	for _, e := range entries {
		if e.Event == supervisor.EventFailure && e.Kind == "fnv-mismatch" {
			found = true
		}
	}
	if !found {
		t.Fatal("fnv mismatch not journaled")
	}
}

// TestCampaignGridExpansion: axes cross-multiply, replicas share a
// ConfigKey, and invalid axis values fail expansion up front.
func TestCampaignGridExpansion(t *testing.T) {
	c := &Campaign{
		Name:    "grid",
		Base:    jobd.Spec{NFiles: 1},
		Scales:  []string{"small", "bench"},
		Seeds:   []int64{1, 2, 3},
		Repeats: 2,
	}
	cells, err := c.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 12 {
		t.Fatalf("%d cells, want 2×3×2 = 12", len(cells))
	}
	ids := map[string]bool{}
	keys := map[uint64]int{}
	for _, cell := range cells {
		if ids[cell.ID] {
			t.Fatalf("duplicate cell id %s", cell.ID)
		}
		ids[cell.ID] = true
		keys[cell.Spec.ConfigKey()]++
	}
	if len(keys) != 6 {
		t.Fatalf("%d distinct config keys, want 6 grid points", len(keys))
	}
	for k, n := range keys {
		if n != 2 {
			t.Fatalf("config %016x has %d replicas, want 2", k, n)
		}
	}

	bad := &Campaign{Name: "bad", Scales: []string{"warp9"}}
	if _, err := bad.Grid(); err == nil {
		t.Fatal("invalid scale expanded without error")
	}
	if _, err := (&Campaign{}).Grid(); err == nil {
		t.Fatal("unnamed campaign expanded without error")
	}
}
