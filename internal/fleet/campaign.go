package fleet

import (
	"encoding/json"
	"fmt"
	"os"

	"ptlsim/internal/jobd"
)

// Campaign is one sweep specification: a base job spec plus axes that
// multiply into a grid. Empty axes contribute a single point taken
// from the base, so the degenerate campaign is one cell. Repeats adds
// replica cells per grid point; replicas share a jobd.ConfigKey, and
// the dispatcher verifies at finalize that every replica of a point
// produced a bit-identical console FNV — determinism is checked by the
// sweep itself, not by a separate rerun.
type Campaign struct {
	Name string    `json:"name"`
	Base jobd.Spec `json:"base"`

	// Grid axes (cross product, applied over Base).
	Scales  []string `json:"scales,omitempty"`  // workload scale
	Cores   []string `json:"cores,omitempty"`   // machine model
	Seeds   []int64  `json:"seeds,omitempty"`   // corpus seed
	Injects []string `json:"injects,omitempty"` // fault-injection spec ("" = none)

	Repeats int `json:"repeats,omitempty"` // replicas per point (default 1)

	// Campaign-level admission metadata, stamped into every cell spec
	// (non-zero values override the base spec's). Tenant names the
	// account the campaign's jobs bill against on every daemon,
	// Priority orders them within that tenant, and DeadlineMs is the
	// per-cell client deadline — a cell whose estimated queue wait
	// exceeds it is shed at admission (429) and rebalanced to a less
	// loaded node by the dispatcher.
	Tenant     string `json:"tenant,omitempty"`
	Priority   int    `json:"priority,omitempty"`
	DeadlineMs int64  `json:"deadline_ms,omitempty"`
}

// Cell is one grid point replica: the unit of lease, dispatch and
// verdict. ID is the cell's stable identity within the campaign (used
// in journal entries and fencing keys); Label is the human-readable
// axis assignment.
type Cell struct {
	ID    string
	Label string
	Spec  jobd.Spec // fully resolved; campaign/epoch stamping happens at submit
}

// LoadCampaign reads a campaign spec from a JSON file.
func LoadCampaign(path string) (*Campaign, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Campaign
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("fleet: campaign %s: %w", path, err)
	}
	return &c, nil
}

// Grid expands the campaign into its cells, validating every resolved
// spec so a bad axis value fails the whole campaign up front instead
// of surfacing as scattered 422s mid-sweep.
func (c *Campaign) Grid() ([]Cell, error) {
	if c.Name == "" {
		return nil, fmt.Errorf("fleet: campaign needs a name (it namespaces the fencing keys)")
	}
	scales := orBase(c.Scales, c.Base.Scale)
	cores := orBase(c.Cores, c.Base.Core)
	seeds := c.Seeds
	if len(seeds) == 0 {
		seeds = []int64{c.Base.Seed}
	}
	injects := orBase(c.Injects, c.Base.Inject)
	repeats := c.Repeats
	if repeats <= 0 {
		repeats = 1
	}

	var cells []Cell
	idx := 0
	for _, sc := range scales {
		for _, co := range cores {
			for _, seed := range seeds {
				for inj, spec := range injects {
					for r := 0; r < repeats; r++ {
						s := c.Base
						s.Scale, s.Core, s.Seed, s.Inject = sc, co, seed, spec
						if c.Tenant != "" {
							s.Tenant = c.Tenant
						}
						if c.Priority != 0 {
							s.Priority = c.Priority
						}
						if c.DeadlineMs != 0 {
							s.ClientDeadlineMs = c.DeadlineMs
						}
						if err := s.Validate(); err != nil {
							return nil, fmt.Errorf("fleet: cell scale=%s core=%s seed=%d inject=%q: %w",
								sc, co, seed, spec, err)
						}
						cells = append(cells, Cell{
							ID: fmt.Sprintf("%05d", idx),
							Label: fmt.Sprintf("scale=%s core=%s seed=%d inject=%d rep=%d",
								orDefault(sc), orDefault(co), seed, inj, r),
							Spec: s,
						})
						idx++
					}
				}
			}
		}
	}
	return cells, nil
}

func orBase(axis []string, base string) []string {
	if len(axis) == 0 {
		return []string{base}
	}
	return axis
}

func orDefault(s string) string {
	if s == "" {
		return "(default)"
	}
	return s
}
