package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ptlsim/internal/jobd"
)

// testClient returns a client whose sleeps are recorded instead of
// slept, so retry pacing is asserted without wall-clock cost.
func testClient(cfg ClientConfig) (*Client, *[]time.Duration) {
	c := NewClient(cfg)
	var slept []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	return c, &slept
}

// TestRetriesTransientThenSucceeds: 5xx responses are retried with
// exponential backoff until the daemon recovers.
func TestRetriesTransientThenSucceeds(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) <= 2 {
			http.Error(w, "warming up", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("ok\n"))
	}))
	defer srv.Close()

	c, slept := testClient(ClientConfig{BaseBackoff: 10 * time.Millisecond})
	if err := c.Healthz(context.Background(), srv.URL); err != nil {
		t.Fatalf("healthz after recovery: %v", err)
	}
	if got := atomic.LoadInt32(&calls); got != 3 {
		t.Fatalf("%d calls, want 3", got)
	}
	if len(*slept) != 2 || (*slept)[1] < (*slept)[0] {
		t.Fatalf("backoff sleeps %v, want 2 increasing", *slept)
	}
}

// TestHonorsRetryAfter: a 429's Retry-After header overrides the
// exponential schedule — the daemon computed it from its real drain
// rate, which beats guessing.
func TestHonorsRetryAfter(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) == 1 {
			w.Header().Set("Retry-After", "3")
			http.Error(w, "queue full", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"id":"0001","state":"queued","spec":{},"submitted_at":""}`))
	}))
	defer srv.Close()

	c, slept := testClient(ClientConfig{BaseBackoff: 10 * time.Millisecond})
	if _, _, err := c.Submit(context.Background(), srv.URL, jobd.Spec{}, "k"); err != nil {
		t.Fatal(err)
	}
	if len(*slept) != 1 || (*slept)[0] != 3*time.Second {
		t.Fatalf("slept %v, want exactly the server's 3s", *slept)
	}
}

// TestRetryAfterClamped: a hostile or confused Retry-After cannot park
// the dispatcher past MaxBackoff.
func TestRetryAfterClamped(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3600")
		http.Error(w, "queue full", http.StatusTooManyRequests)
	}))
	defer srv.Close()

	c, slept := testClient(ClientConfig{Retries: 1, MaxBackoff: 200 * time.Millisecond})
	if err := c.Healthz(context.Background(), srv.URL); err == nil {
		t.Fatal("expected failure after retries")
	}
	if len(*slept) != 1 || (*slept)[0] != 200*time.Millisecond {
		t.Fatalf("slept %v, want one clamped 200ms", *slept)
	}
}

// TestNoRetryOnVerdicts: 4xx responses other than 429 are protocol
// verdicts — a fenced 409 retried is exactly the bug fencing exists to
// stop — so the client returns them immediately.
func TestNoRetryOnVerdicts(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		http.Error(w, `{"error":"jobd: stale lease epoch"}`, http.StatusConflict)
	}))
	defer srv.Close()

	c, slept := testClient(ClientConfig{})
	_, _, err := c.Submit(context.Background(), srv.URL, jobd.Spec{}, "k")
	if err == nil || StatusCode(err) != http.StatusConflict {
		t.Fatalf("err %v, want 409", err)
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Fatalf("%d calls, want 1 (no retry)", got)
	}
	if len(*slept) != 0 {
		t.Fatalf("slept %v, want none", *slept)
	}
}

// TestTransportErrorsRetryThenFail: connection-level failures retry and
// surface with StatusCode 0 — the ambiguous class the dispatcher must
// treat as possibly-landed.
func TestTransportErrorsRetryThenFail(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close() // nothing listens here anymore

	c, slept := testClient(ClientConfig{Retries: 2, BaseBackoff: time.Millisecond})
	err := c.Healthz(context.Background(), url)
	if err == nil {
		t.Fatal("expected transport error")
	}
	if StatusCode(err) != 0 {
		t.Fatalf("StatusCode(%v) = %d, want 0 (no HTTP status)", err, StatusCode(err))
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %v, want 2 retries", *slept)
	}
}

// TestSubmitDedupDetected: a 200 on POST /jobs is the daemon replaying
// an Idempotency-Key duplicate, and the client reports it as such.
func TestSubmitDedupDetected(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Idempotency-Key") != "camp/00001/1" {
			t.Errorf("Idempotency-Key = %q", r.Header.Get("Idempotency-Key"))
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"id":"0007","state":"done","spec":{},"submitted_at":""}`))
	}))
	defer srv.Close()

	c, _ := testClient(ClientConfig{})
	st, dup, err := c.Submit(context.Background(), srv.URL, jobd.Spec{}, "camp/00001/1")
	if err != nil || !dup || st.ID != "0007" {
		t.Fatalf("st=%+v dup=%v err=%v", st, dup, err)
	}
}

// TestJobsQuery: phase and limit land on the wire as query parameters.
func TestJobsQuery(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.URL.RawQuery; got != "phase=done&limit=5" {
			t.Errorf("query = %q", got)
		}
		w.Write([]byte(`[{"id":"0001","state":"done","spec":{},"submitted_at":""}]`))
	}))
	defer srv.Close()

	c, _ := testClient(ClientConfig{})
	jobs, err := c.Jobs(context.Background(), srv.URL, "done", 5)
	if err != nil || len(jobs) != 1 {
		t.Fatalf("jobs=%v err=%v", jobs, err)
	}
}

// TestRequestDeadline: a hung server cannot wedge the client — the
// per-request context deadline fires.
func TestRequestDeadline(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer srv.Close()

	c, _ := testClient(ClientConfig{Timeout: 50 * time.Millisecond, Retries: -1})
	start := time.Now()
	err := c.Healthz(context.Background(), srv.URL)
	if err == nil {
		t.Fatal("expected deadline error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline took %v", elapsed)
	}
}
