// Package chaosnet is a fault-injecting TCP proxy for exercising the
// fleet dispatcher's network-failure handling without touching kernel
// packet filters: it forwards byte streams between a listen address
// and a target, and injects the failure modes distributed dispatch
// actually meets — added latency, refused connections, mid-stream
// resets, full partitions (a blackhole that stalls bytes and lets the
// peer's deadline fire, which is what a real partition feels like —
// not a polite RST), and slow-loris throttling. Faults are swappable
// at runtime, so a test or soak script flips a partition on and off
// around a live daemon.
package chaosnet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Faults is the active fault set. The zero value is a transparent
// proxy. Probabilities are per new connection.
type Faults struct {
	LatencyMs int     `json:"latency_ms,omitempty"` // connect delay before dialing the target
	JitterMs  int     `json:"jitter_ms,omitempty"`  // extra random connect delay in [0, JitterMs)
	DropProb  float64 `json:"drop_prob,omitempty"`  // close new connections immediately
	ResetProb float64 `json:"reset_prob,omitempty"` // RST the connection mid-stream (SO_LINGER 0)
	Partition bool    `json:"partition,omitempty"`  // blackhole: stall all forwarding both ways
	// ThrottleBps caps per-direction forwarding to N bytes/sec
	// (slow-loris bodies: the connection works, agonizingly).
	ThrottleBps int `json:"throttle_bps,omitempty"`
	// BandwidthBps caps *aggregate* forwarded bytes/sec across every
	// connection and both directions — a token bucket (burst of one
	// second's allowance, starting empty) modeling a slow shared link
	// in front of a tenant, where ThrottleBps models one slow stream.
	// Concurrent connections contend for the same tokens, so fan-out
	// does not evade the cap.
	BandwidthBps int `json:"bandwidth_bps,omitempty"`
}

// Stats counts what the proxy did, for test and soak assertions.
type Stats struct {
	Conns     int64 `json:"conns"`
	Dropped   int64 `json:"dropped"`
	Resets    int64 `json:"resets"`
	Stalled   int64 `json:"stalled"`  // connections that hit a partition window
	BwWaits   int64 `json:"bw_waits"` // pipe stalls waiting for bandwidth tokens
	BytesIn   int64 `json:"bytes_in"`
	BytesOut  int64 `json:"bytes_out"`
	DialFails int64 `json:"dial_fails"`
}

// Proxy forwards ListenAddr → Target with the current Faults applied.
type Proxy struct {
	target string
	ln     net.Listener

	mu     sync.Mutex
	faults Faults
	rng    *rand.Rand

	conns    int64
	dropped  int64
	resets   int64
	stalled  int64
	bwWaits  int64
	bytesIn  int64
	bytesOut int64
	dialFail int64

	// Shared bandwidth-cap token bucket (Faults.BandwidthBps).
	bwMu     sync.Mutex
	bwTokens float64
	bwLast   time.Time

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// New starts a proxy listening on listen (e.g. "127.0.0.1:0"),
// forwarding to target. seed fixes the fault-probability stream for
// reproducible tests.
func New(listen, target string, seed int64) (*Proxy, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("chaosnet: listen %s: %w", listen, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Proxy{
		target: target,
		ln:     ln,
		rng:    rand.New(rand.NewSource(seed)),
		ctx:    ctx,
		cancel: cancel,
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listen address (useful with ":0").
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetFaults atomically replaces the active fault set. In-flight
// connections see the change on their next forwarded chunk (so
// flipping Partition on stalls live streams, and flipping it off
// releases any that survived their peer's deadline).
func (p *Proxy) SetFaults(f Faults) {
	p.mu.Lock()
	p.faults = f
	p.mu.Unlock()
}

// GetFaults returns the active fault set.
func (p *Proxy) GetFaults() Faults {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.faults
}

// Stats snapshots the counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Conns:     atomic.LoadInt64(&p.conns),
		Dropped:   atomic.LoadInt64(&p.dropped),
		Resets:    atomic.LoadInt64(&p.resets),
		Stalled:   atomic.LoadInt64(&p.stalled),
		BwWaits:   atomic.LoadInt64(&p.bwWaits),
		BytesIn:   atomic.LoadInt64(&p.bytesIn),
		BytesOut:  atomic.LoadInt64(&p.bytesOut),
		DialFails: atomic.LoadInt64(&p.dialFail),
	}
}

// Close stops accepting and tears down every forwarded connection.
func (p *Proxy) Close() error {
	p.cancel()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.wg.Add(1)
		go p.handle(conn)
	}
}

func (p *Proxy) roll(prob float64) bool {
	if prob <= 0 {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Float64() < prob
}

func (p *Proxy) jitter(ms int) int {
	if ms <= 0 {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Intn(ms)
}

func (p *Proxy) handle(client net.Conn) {
	defer p.wg.Done()
	atomic.AddInt64(&p.conns, 1)
	f := p.GetFaults()

	if p.roll(f.DropProb) {
		atomic.AddInt64(&p.dropped, 1)
		client.Close()
		return
	}
	if delay := time.Duration(f.LatencyMs+p.jitter(f.JitterMs)) * time.Millisecond; delay > 0 {
		select {
		case <-time.After(delay):
		case <-p.ctx.Done():
			client.Close()
			return
		}
	}
	// Note the partition check lives in the pipes, not here: a
	// partitioned proxy still accepts and dials (SYN handshakes often
	// survive real partitions at the edge) — it just forwards nothing,
	// so the client's own context deadline is what ends the attempt.
	upstream, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		atomic.AddInt64(&p.dialFail, 1)
		client.Close()
		return
	}

	reset := p.roll(f.ResetProb)
	done := make(chan struct{}, 2)
	p.wg.Add(2)
	go p.pipe(client, upstream, &p.bytesIn, reset, done)  // client → target
	go p.pipe(upstream, client, &p.bytesOut, false, done) // target → client

	select {
	case <-done:
	case <-p.ctx.Done():
	}
	client.Close()
	upstream.Close()
	<-done
}

// pipe forwards src → dst in small chunks, consulting the live fault
// set between chunks: a partition stalls the loop (bytes stop, the
// connection does not), a throttle paces it, and a reset flag tears
// the connection down with SO_LINGER 0 after the first chunk so the
// peer sees a mid-stream RST rather than a clean FIN.
func (p *Proxy) pipe(src, dst net.Conn, counter *int64, reset bool, done chan<- struct{}) {
	defer p.wg.Done()
	defer func() { done <- struct{}{} }()
	buf := make([]byte, 4096)
	stalledCounted := false
	for {
		f := p.GetFaults()
		if f.Partition {
			if !stalledCounted {
				atomic.AddInt64(&p.stalled, 1)
				stalledCounted = true
			}
			select {
			case <-time.After(20 * time.Millisecond):
				continue
			case <-p.ctx.Done():
				return
			}
		}
		limit := len(buf)
		if f.ThrottleBps > 0 {
			// Pace to the cap in 50ms slices; at least one byte per
			// slice so tiny caps still creep forward (that is the loris).
			limit = f.ThrottleBps / 20
			if limit < 1 {
				limit = 1
			}
			if limit > len(buf) {
				limit = len(buf)
			}
		}
		grant := 0
		if f.BandwidthBps > 0 {
			if grant = p.bwGrant(limit, f.BandwidthBps); grant == 0 {
				atomic.AddInt64(&p.bwWaits, 1)
				select {
				case <-time.After(10 * time.Millisecond):
					continue
				case <-p.ctx.Done():
					return
				}
			}
			limit = grant
		}
		src.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		n, err := src.Read(buf[:limit])
		if grant > n {
			// Short (or timed-out) read: put the unused allowance back so
			// a quiet stream doesn't burn the shared budget.
			p.bwRefund(grant - n)
		}
		if n > 0 {
			atomic.AddInt64(counter, int64(n))
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
			if reset {
				p.rst(src)
				p.rst(dst)
				return
			}
			if f.ThrottleBps > 0 {
				select {
				case <-time.After(50 * time.Millisecond):
				case <-p.ctx.Done():
					return
				}
			}
		}
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue // deadline tick: re-check faults, keep reading
			}
			return
		}
	}
}

// bwGrant takes up to want bytes from the shared bandwidth bucket,
// refilling at bps tokens/sec with a burst cap of one second's worth.
// The bucket starts empty, so the first bytes through a freshly capped
// proxy already pay the pacing cost rather than riding a free burst.
func (p *Proxy) bwGrant(want, bps int) int {
	p.bwMu.Lock()
	defer p.bwMu.Unlock()
	now := time.Now()
	if p.bwLast.IsZero() {
		p.bwLast = now
	}
	p.bwTokens += now.Sub(p.bwLast).Seconds() * float64(bps)
	p.bwLast = now
	if p.bwTokens > float64(bps) {
		p.bwTokens = float64(bps)
	}
	g := want
	if float64(g) > p.bwTokens {
		g = int(p.bwTokens)
	}
	if g < 0 {
		g = 0
	}
	p.bwTokens -= float64(g)
	return g
}

func (p *Proxy) bwRefund(n int) {
	p.bwMu.Lock()
	p.bwTokens += float64(n)
	p.bwMu.Unlock()
}

// rst closes a TCP connection with SO_LINGER 0, so the peer receives
// a hard RST mid-stream instead of an orderly shutdown.
func (p *Proxy) rst(c net.Conn) {
	atomic.AddInt64(&p.resets, 1)
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

// ControlHandler exposes the proxy over HTTP for scripts:
//
//	GET  /faults  current fault set
//	POST /faults  replace the fault set (JSON Faults body)
//	GET  /stats   counters
func (p *Proxy) ControlHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /faults", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, p.GetFaults())
	})
	mux.HandleFunc("POST /faults", func(w http.ResponseWriter, r *http.Request) {
		var f Faults
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&f); err != nil {
			http.Error(w, "bad faults: "+err.Error(), http.StatusUnprocessableEntity)
			return
		}
		p.SetFaults(f)
		writeJSON(w, f)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, p.Stats())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
