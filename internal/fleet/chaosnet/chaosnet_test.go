package chaosnet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// proxyFor starts an HTTP echo-ish upstream and a proxy in front of
// it, returning the proxy and a base URL that goes through it.
func proxyFor(t *testing.T, handler http.Handler) (*Proxy, string) {
	t.Helper()
	upstream := httptest.NewServer(handler)
	t.Cleanup(upstream.Close)
	p, err := New("127.0.0.1:0", strings.TrimPrefix(upstream.URL, "http://"), 42)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p, "http://" + p.Addr()
}

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		fmt.Fprintf(w, "echo:%s", body)
	})
}

func get(t *testing.T, client *http.Client, url string) (string, error) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// TestTransparentProxy: with zero faults the proxy is invisible.
func TestTransparentProxy(t *testing.T) {
	p, url := proxyFor(t, okHandler())
	body, err := get(t, http.DefaultClient, url)
	if err != nil || body != "echo:" {
		t.Fatalf("body %q err %v", body, err)
	}
	st := p.Stats()
	if st.Conns != 1 || st.Dropped != 0 || st.BytesIn == 0 || st.BytesOut == 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestLatencyInjection: connect latency delays the exchange.
func TestLatencyInjection(t *testing.T) {
	p, url := proxyFor(t, okHandler())
	p.SetFaults(Faults{LatencyMs: 150})
	start := time.Now()
	if _, err := get(t, http.DefaultClient, url); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("request took %v, want ≥ 150ms", elapsed)
	}
}

// TestConnectionDrop: DropProb 1 refuses every exchange.
func TestConnectionDrop(t *testing.T) {
	p, url := proxyFor(t, okHandler())
	p.SetFaults(Faults{DropProb: 1})
	client := &http.Client{Timeout: 2 * time.Second}
	if _, err := get(t, client, url); err == nil {
		t.Fatal("dropped connection served a response")
	}
	if st := p.Stats(); st.Dropped == 0 {
		t.Fatalf("stats %+v: no drop counted", st)
	}
}

// TestMidStreamReset: ResetProb 1 tears the connection down with an
// RST after the first forwarded chunk — the peer sees a hard error,
// not a clean close.
func TestMidStreamReset(t *testing.T) {
	p, url := proxyFor(t, okHandler())
	p.SetFaults(Faults{ResetProb: 1})
	client := &http.Client{Timeout: 2 * time.Second}
	if _, err := get(t, client, url); err == nil {
		t.Fatal("reset connection served a clean response")
	}
	if st := p.Stats(); st.Resets == 0 {
		t.Fatalf("stats %+v: no reset counted", st)
	}
}

// TestPartitionStallsAndHeals: a partition is a blackhole — requests
// hang until the client deadline fires — and healing restores service
// without restarting anything.
func TestPartitionStallsAndHeals(t *testing.T) {
	p, url := proxyFor(t, okHandler())

	p.SetFaults(Faults{Partition: true})
	client := &http.Client{Timeout: 300 * time.Millisecond}
	start := time.Now()
	_, err := get(t, client, url)
	if err == nil {
		t.Fatal("partitioned request succeeded")
	}
	if elapsed := time.Since(start); elapsed < 250*time.Millisecond {
		t.Fatalf("partitioned request failed fast (%v): got a polite error, want a stall", elapsed)
	}
	if st := p.Stats(); st.Stalled == 0 {
		t.Fatalf("stats %+v: no stall counted", st)
	}

	p.SetFaults(Faults{})
	body, err := get(t, http.DefaultClient, url)
	if err != nil || body != "echo:" {
		t.Fatalf("after heal: body %q err %v", body, err)
	}
}

// TestThrottleSlowsTransfer: slow-loris pacing stretches a transfer
// that would otherwise be instant, without corrupting it.
func TestThrottleSlowsTransfer(t *testing.T) {
	payload := strings.Repeat("x", 600)
	p, url := proxyFor(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	p.SetFaults(Faults{ThrottleBps: 2000}) // 100 bytes per 50ms slice

	start := time.Now()
	body, err := get(t, http.DefaultClient, url)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(body, payload) {
		t.Fatalf("throttled body corrupted (%d bytes)", len(body))
	}
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Fatalf("600B at 2000Bps took %v, want ≥ 200ms", elapsed)
	}
}

// TestBandwidthCapSlowsTransfer: the shared token bucket paces the
// aggregate byte rate — the bucket starts empty, so a transfer that
// would be instant is stretched to roughly bytes/BandwidthBps, and the
// stalls it takes waiting for refill are counted for soak assertions.
func TestBandwidthCapSlowsTransfer(t *testing.T) {
	payload := strings.Repeat("y", 600)
	p, url := proxyFor(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	p.SetFaults(Faults{BandwidthBps: 2000})

	start := time.Now()
	body, err := get(t, http.DefaultClient, url)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(body, payload) {
		t.Fatalf("capped body corrupted (%d bytes)", len(body))
	}
	// Request + response together are well over 600 bytes; at 2000 Bps
	// from an empty bucket that is ≥ 300ms of pacing. Keep slack for
	// scheduler jitter and assert the floor loosely.
	if elapsed := time.Since(start); elapsed < 250*time.Millisecond {
		t.Fatalf("600B payload at 2000Bps cap took %v, want ≥ 250ms", elapsed)
	}
	if st := p.Stats(); st.BwWaits == 0 {
		t.Fatalf("stats %+v: no bandwidth waits counted", st)
	}
}

// TestControlHandler: the HTTP control plane flips faults and reports
// stats — the interface soak scripts drive partitions through.
func TestControlHandler(t *testing.T) {
	p, url := proxyFor(t, okHandler())
	ctl := httptest.NewServer(p.ControlHandler())
	defer ctl.Close()

	resp, err := http.Post(ctl.URL+"/faults", "application/json",
		bytes.NewReader([]byte(`{"partition":true}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !p.GetFaults().Partition {
		t.Fatal("control POST did not take")
	}

	client := &http.Client{Timeout: 200 * time.Millisecond}
	if _, err := get(t, client, url); err == nil {
		t.Fatal("partition set via control plane did not stall")
	}

	resp, err = http.Post(ctl.URL+"/faults", "application/json", bytes.NewReader([]byte(`{}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, err := get(t, http.DefaultClient, url); err != nil {
		t.Fatalf("after control heal: %v", err)
	}

	var st Stats
	sresp, err := http.Get(ctl.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Conns == 0 || st.Stalled == 0 {
		t.Fatalf("control stats %+v", st)
	}

	badResp, err := http.Post(ctl.URL+"/faults", "application/json",
		bytes.NewReader([]byte(`{bad json`)))
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad faults body: %d, want 422", badResp.StatusCode)
	}
}

// TestCloseUnblocksEverything: Close during a partition tears down
// stalled connections instead of hanging.
func TestCloseUnblocksEverything(t *testing.T) {
	p, url := proxyFor(t, okHandler())
	p.SetFaults(Faults{Partition: true})

	errc := make(chan error, 1)
	go func() {
		_, err := get(t, &http.Client{}, url)
		errc <- err
	}()
	time.Sleep(100 * time.Millisecond)

	done := make(chan struct{})
	go func() {
		p.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a partitioned connection")
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("stalled request claims success after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled client never unblocked")
	}
}
