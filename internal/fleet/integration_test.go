package fleet

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"ptlsim/internal/fleet/chaosnet"
	"ptlsim/internal/jobd"
	"ptlsim/internal/supervisor"
)

// TestMain doubles as the worker entry point, same trick as the jobd
// tests: the real daemons spun up here re-exec this test binary with
// PTLSERVE_WORKER_DIR set, so integration tests run genuine worker
// subprocesses executing the genuine simulator workload.
func TestMain(m *testing.M) {
	if dir := os.Getenv("PTLSERVE_WORKER_DIR"); dir != "" {
		os.Exit(jobd.WorkerMain(dir, os.Stderr))
	}
	os.Exit(m.Run())
}

// realDaemon starts an in-process jobd.Daemon with re-exec'd workers
// and serves its HTTP API from an httptest server.
func realDaemon(t *testing.T) (*jobd.Daemon, *httptest.Server) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	d, err := jobd.New(jobd.Config{
		Dir: t.TempDir(),
		WorkerCommand: func(jobDir string) *exec.Cmd {
			cmd := exec.Command(exe)
			cmd.Env = []string{"PTLSERVE_WORKER_DIR=" + jobDir}
			return cmd
		},
		Workers:      2,
		QueueDepth:   16,
		PollInterval: 10 * time.Millisecond,
		Deadline:     2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		d.Drain(ctx)
	})
	return d, srv
}

// lockedBuffer is an io.Writer safe to read while the dispatcher is
// still appending journal entries from its tick goroutine.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) snapshot() *bytes.Buffer {
	l.mu.Lock()
	defer l.mu.Unlock()
	return bytes.NewBuffer(append([]byte(nil), l.b.Bytes()...))
}

// TestIntegrationRealDaemons: a small campaign across two genuine
// ptlserve daemons — real workers, real simulator, real console FNVs —
// completes with one verdict per cell and bit-identical replicas.
func TestIntegrationRealDaemons(t *testing.T) {
	if testing.Short() {
		t.Skip("real-daemon integration test")
	}
	_, s1 := realDaemon(t)
	_, s2 := realDaemon(t)

	var buf lockedBuffer
	d, err := NewDispatcher(Config{
		Nodes:        []Node{{Name: "n1", URL: s1.URL}, {Name: "n2", URL: s2.URL}},
		LeaseTTL:     10 * time.Second,
		PollInterval: 100 * time.Millisecond,
		Inflight:     2,
		Journal:      supervisor.NewJournal(&buf),
		Submit:       NewClient(ClientConfig{Timeout: 2 * time.Second, Retries: 1, BaseBackoff: 50 * time.Millisecond}),
		Poll:         NewClient(ClientConfig{Timeout: 2 * time.Second, Retries: -1}),
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	camp := &Campaign{
		Name: "integ",
		Base: jobd.Spec{Scale: "bench", NFiles: 1, FileSize: 1024, Change: 0.4,
			Timer: 4_000_000_000, MaxCycles: -1, CheckpointCycles: 50_000},
		Seeds:   []int64{5, 6},
		Repeats: 2,
	}
	rep, err := d.Run(t.Context(), camp)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done != 4 || rep.Failed != 0 || len(rep.Mismatches) != 0 {
		t.Fatalf("report %+v", rep)
	}
	vs := verdictsPerCell(t, rep)
	for cell, v := range vs {
		if v.ConsoleFNV == 0 {
			t.Fatalf("cell %s: zero console FNV from a real run", cell)
		}
	}
	// Replicas (same seed, different cells, possibly different daemons)
	// must agree bit-for-bit — this is the real engine, not a fake.
	byKey := map[uint64]map[uint64]bool{}
	for _, v := range vs {
		if byKey[v.ConfigKey] == nil {
			byKey[v.ConfigKey] = map[uint64]bool{}
		}
		byKey[v.ConfigKey][v.ConsoleFNV] = true
	}
	if len(byKey) != 2 {
		t.Fatalf("%d config keys, want 2", len(byKey))
	}
	for key, fnvs := range byKey {
		if len(fnvs) != 1 {
			t.Fatalf("config %016x: replicas disagree: %v", key, fnvs)
		}
	}
}

// TestIntegrationPartitionSteal: three real daemons, one behind a
// chaosnet proxy. Mid-campaign the proxy partitions (blackhole, not
// polite refusal) for longer than the lease TTL: the dispatcher must
// mark the node down, steal its leased cells to survivors, and finish
// the sweep with zero lost cells and zero duplicate verdicts.
func TestIntegrationPartitionSteal(t *testing.T) {
	if testing.Short() {
		t.Skip("real-daemon integration test")
	}
	_, s1 := realDaemon(t)
	_, s2 := realDaemon(t)
	_, s3 := realDaemon(t)

	proxy, err := chaosnet.New("127.0.0.1:0", strings.TrimPrefix(s3.URL, "http://"), 7)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	var buf lockedBuffer
	d, err := NewDispatcher(Config{
		Nodes: []Node{
			{Name: "n1", URL: s1.URL},
			{Name: "n2", URL: s2.URL},
			{Name: "n3", URL: "http://" + proxy.Addr()},
		},
		LeaseTTL:     1500 * time.Millisecond,
		PollInterval: 100 * time.Millisecond,
		DownAfter:    2,
		Inflight:     2,
		Journal:      supervisor.NewJournal(&buf),
		Submit:       NewClient(ClientConfig{Timeout: time.Second, Retries: 1, BaseBackoff: 50 * time.Millisecond}),
		Poll:         NewClient(ClientConfig{Timeout: 500 * time.Millisecond, Retries: -1}),
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Real simulation jobs run several seconds of wall clock here, so
	// n3's leases are still in flight when the partition lands.
	camp := &Campaign{
		Name: "chaos",
		Base: jobd.Spec{Scale: "bench", NFiles: 1, FileSize: 1024, Change: 0.5,
			Timer: 4_000_000_000, MaxCycles: -1, CheckpointCycles: 50_000},
		Seeds:   []int64{1, 2, 3},
		Repeats: 2,
	}

	type runResult struct {
		rep *Report
		err error
	}
	done := make(chan runResult, 1)
	go func() {
		rep, err := d.Run(t.Context(), camp)
		done <- runResult{rep, err}
	}()

	// Let the first assignment pass hand n3 its cells, then pull the
	// cable for two lease TTLs.
	time.Sleep(400 * time.Millisecond)
	proxy.SetFaults(chaosnet.Faults{Partition: true})
	time.Sleep(3 * time.Second)
	proxy.SetFaults(chaosnet.Faults{})

	var res runResult
	select {
	case res = <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("campaign did not finish after partition healed")
	}
	if res.err != nil {
		t.Fatal(res.err)
	}
	rep := res.rep
	if rep.Done != 6 || rep.Failed != 0 {
		t.Fatalf("report %+v", rep)
	}
	if rep.Steals == 0 {
		t.Fatal("partition outlasted the lease TTL but nothing was stolen")
	}
	if len(rep.Mismatches) != 0 {
		t.Fatalf("replica FNV mismatches: %v", rep.Mismatches)
	}
	verdictsPerCell(t, rep) // fails on any duplicate verdict

	ev := journalEvents(t, buf.snapshot())
	if ev["node_down"] == 0 {
		t.Fatalf("journal events %v: partitioned node never marked down", ev)
	}
	if ev["lease_steal"] != rep.Steals {
		t.Fatalf("journal steals %d != report %d", ev["lease_steal"], rep.Steals)
	}
	if st := proxy.Stats(); st.Stalled == 0 {
		t.Fatalf("proxy stats %+v: partition never actually stalled traffic", st)
	}
}
