// Package fleet is the multi-node campaign dispatcher behind
// cmd/ptlsweep: it expands one campaign spec into a grid of simulation
// jobs and drives the grid across N ptlserve daemons over the existing
// HTTP job protocol. The fault model is the network, not the workload —
// nodes die, partitions form and heal, requests hang — so dispatch is
// built on per-cell leases with monotonic fencing epochs: a cell's
// verdict is recorded only from the epoch that currently holds the
// lease, a lease that cannot be renewed (the node stopped answering
// polls) is stolen to a surviving node at a higher epoch, and anything
// the superseded epoch later produces is rejected at collection. The
// daemon enforces the same fence on admission (HTTP 409), so a
// partitioned-then-healed dispatch path cannot re-admit a stale lease
// either.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"ptlsim/internal/jobd"
	"ptlsim/internal/metrics"
)

// ClientConfig tunes the retrying HTTP client. Zero values take the
// defaults noted per field.
type ClientConfig struct {
	Timeout     time.Duration // per-request context deadline (default 5s)
	Retries     int           // retry attempts after the first try (-1 = none, default 3)
	BaseBackoff time.Duration // first retry delay (default 100ms)
	MaxBackoff  time.Duration // backoff and Retry-After ceiling (default 5s)
	Seed        int64         // jitter seed (0 = unjittered, for deterministic tests)
}

// Client is an HTTP client for talking to ptlserve daemons across an
// unreliable network: every request carries a context deadline, and
// retryable outcomes — transport errors, 5xx, 429 — are retried with
// exponential backoff plus jitter, honoring the Retry-After header the
// daemon computes from its measured queue drain rate (clamped to
// MaxBackoff so a confused server cannot park the dispatcher). 4xx
// responses other than 429 are never retried: in this protocol they are
// verdicts (409 = fenced stale epoch), not weather.
type Client struct {
	cfg   ClientConfig
	hc    *http.Client
	sleep func(ctx context.Context, d time.Duration) error // injectable for tests

	mu  sync.Mutex
	rng *rand.Rand
}

// NewClient builds a client, applying ClientConfig defaults.
func NewClient(cfg ClientConfig) *Client {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.Retries == 0 {
		cfg.Retries = 3
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	c := &Client{
		cfg:   cfg,
		hc:    &http.Client{},
		sleep: sleepCtx,
	}
	if cfg.Seed != 0 {
		c.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	return c
}

// HTTPError is a non-2xx response, preserving the status code so
// callers can distinguish a fenced 409 from a missing 404. RetryAfter
// carries the server's Retry-After hint when one accompanied the
// response (429 backpressure), so the dispatcher can back off a
// throttled node for the server-stated interval instead of guessing.
type HTTPError struct {
	StatusCode int
	Message    string
	RetryAfter time.Duration
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("http %d: %s", e.StatusCode, e.Message)
}

// StatusCode returns err's HTTP status code, or 0 for transport-level
// errors (timeout, refused connection, reset) that never got a status.
func StatusCode(err error) int {
	var he *HTTPError
	if errors.As(err, &he) {
		return he.StatusCode
	}
	return 0
}

// RetryAfterOf returns the server's Retry-After hint attached to err
// (0 when the error carried none).
func RetryAfterOf(err error) time.Duration {
	var he *HTTPError
	if errors.As(err, &he) {
		return he.RetryAfter
	}
	return 0
}

// do runs one request with the retry policy. body is kept as bytes so
// retries can resend it; idemKey (when non-empty) is sent as the
// Idempotency-Key header, which is what makes retrying a POST /jobs
// safe — an ambiguous first attempt that actually landed dedups to a
// 200 with the original job instead of admitting a second one.
func (c *Client) do(ctx context.Context, method, url string, body []byte, idemKey string) (*http.Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		rctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(rctx, method, url, rd)
		if err != nil {
			cancel()
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if idemKey != "" {
			req.Header.Set("Idempotency-Key", idemKey)
		}
		resp, err := c.hc.Do(req)
		if err == nil && !retryableStatus(resp.StatusCode) {
			// Terminal outcome (success or a 4xx verdict): hand the body
			// to the caller; the deadline stays armed until they finish
			// reading, released by the wrapped body's Close.
			resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
			return resp, nil
		}

		// Retryable: consume what we can and decide the delay.
		var delay time.Duration
		if err != nil {
			lastErr = err
		} else {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			he := &HTTPError{StatusCode: resp.StatusCode, Message: strings.TrimSpace(string(msg))}
			if ra := retryAfter(resp); ra > 0 {
				delay = ra
				he.RetryAfter = ra
			}
			lastErr = he
		}
		cancel()
		if attempt >= c.cfg.Retries {
			return nil, fmt.Errorf("fleet: %s %s failed after %d attempt(s): %w",
				method, url, attempt+1, lastErr)
		}
		if delay == 0 {
			delay = c.backoff(attempt)
		}
		if delay > c.cfg.MaxBackoff {
			delay = c.cfg.MaxBackoff
		}
		if err := c.sleep(ctx, delay); err != nil {
			return nil, fmt.Errorf("fleet: %s %s: %w (last error: %v)", method, url, err, lastErr)
		}
	}
}

// backoff is the attempt's exponential delay with up to 50% additive
// jitter, so a fleet of retrying cells does not resynchronize into
// thundering herds against a recovering daemon.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BaseBackoff << uint(attempt)
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	if c.rng != nil {
		c.mu.Lock()
		d += time.Duration(c.rng.Int63n(int64(d)/2 + 1))
		c.mu.Unlock()
	}
	return d
}

func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

func retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// getJSON GETs url and decodes the JSON response into out (non-2xx
// returns *HTTPError).
func (c *Client) getJSON(ctx context.Context, url string, out any) error {
	resp, err := c.do(ctx, http.MethodGet, url, nil, "")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return readHTTPError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit POSTs a job spec to a daemon. It returns the admitted (or
// deduplicated) job status and whether this was an Idempotency-Key
// replay of an earlier admission. A fenced stale epoch surfaces as an
// *HTTPError with StatusCode 409.
func (c *Client) Submit(ctx context.Context, base string, spec jobd.Spec, idemKey string) (st jobd.Status, duplicate bool, err error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return jobd.Status{}, false, err
	}
	resp, err := c.do(ctx, http.MethodPost, base+"/jobs", body, idemKey)
	if err != nil {
		return jobd.Status{}, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return jobd.Status{}, false, readHTTPError(resp)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, resp.StatusCode == http.StatusOK, err
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, base, id string) (jobd.Status, error) {
	var st jobd.Status
	err := c.getJSON(ctx, base+"/jobs/"+id, &st)
	return st, err
}

// Jobs lists a daemon's jobs, optionally filtered by phase and bounded
// by limit (0 = unbounded).
func (c *Client) Jobs(ctx context.Context, base string, phase string, limit int) ([]jobd.Status, error) {
	url := base + "/jobs"
	q := make([]string, 0, 2)
	if phase != "" {
		q = append(q, "phase="+phase)
	}
	if limit > 0 {
		q = append(q, "limit="+strconv.Itoa(limit))
	}
	if len(q) > 0 {
		url += "?" + strings.Join(q, "&")
	}
	var out []jobd.Status
	err := c.getJSON(ctx, url, &out)
	return out, err
}

// Version fetches a daemon's build and protocol-schema identity.
func (c *Client) Version(ctx context.Context, base string) (jobd.Version, error) {
	var v jobd.Version
	err := c.getJSON(ctx, base+"/version", &v)
	return v, err
}

// Metrics fetches a daemon's /metrics Prometheus exposition and parses
// the unlabeled series into name → value. Names arrive in sanitized
// Prometheus form (dots become underscores: jobd_queue_depth).
func (c *Client) Metrics(ctx context.Context, base string) (map[string]float64, error) {
	resp, err := c.do(ctx, http.MethodGet, base+"/metrics", nil, "")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, readHTTPError(resp)
	}
	return metrics.ParseText(resp.Body)
}

// Healthz probes daemon liveness.
func (c *Client) Healthz(ctx context.Context, base string) error {
	resp, err := c.do(ctx, http.MethodGet, base+"/healthz", nil, "")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 256))
	if resp.StatusCode/100 != 2 {
		return &HTTPError{StatusCode: resp.StatusCode, Message: "unhealthy"}
	}
	return nil
}

func readHTTPError(resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	var decoded struct {
		Error string `json:"error"`
	}
	text := strings.TrimSpace(string(msg))
	if json.Unmarshal(msg, &decoded) == nil && decoded.Error != "" {
		text = decoded.Error
	}
	return &HTTPError{StatusCode: resp.StatusCode, Message: text}
}

// cancelBody releases the request's deadline timer when the caller
// finishes with the response body.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
