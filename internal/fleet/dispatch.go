package fleet

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"ptlsim/internal/jobd"
	"ptlsim/internal/metrics"
	"ptlsim/internal/supervisor"
)

// Node names one ptlserve daemon in the fleet.
type Node struct {
	Name string `json:"name"`
	URL  string `json:"url"` // base URL, e.g. http://127.0.0.1:8901
}

// Config tunes the dispatcher. Zero values take the defaults noted
// per field.
type Config struct {
	Nodes []Node

	LeaseTTL     time.Duration // lease expiry without a successful poll (default 10s)
	PollInterval time.Duration // dispatch loop tick (default 500ms)
	DownAfter    int           // consecutive health-check failures before node_down (default 3)
	MaxEpochs    int           // lease epochs per cell before it terminally fails (default 8)
	Inflight     int           // per-node concurrent lease cap (default 32)

	Submit  *Client // submission client (full retry policy); default NewClient(ClientConfig{})
	Poll    *Client // status/health client (short timeout, no retries); default 2s/no-retry
	Journal *supervisor.Journal
	Logf    func(format string, args ...any) // optional progress output

	// Metrics, when set, receives the dispatcher's counters (leases
	// granted/stolen/fenced, node-down transitions, cell verdicts), the
	// fleet.nodes.up gauge, and the lease-to-verdict cell latency
	// histogram — ptlsweep serves them at -metrics-addr. The dispatcher
	// only writes plain counters/gauges here (no callbacks into its
	// single-goroutine state), so concurrent scrapes are safe.
	Metrics *metrics.Registry
}

// cellLatencyBounds buckets lease-to-verdict cell latency (ms).
var cellLatencyBounds = []float64{
	100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000, 120000}

// Report is the merged campaign outcome: one verdict per cell plus the
// robustness accounting the soak asserts on. The journal carries the
// same history event-by-event in the shared supervisor schema, so
// `ptlmon -journal` renders the sweep; the report is the structured
// rollup for scripts.
type Report struct {
	Campaign  string `json:"campaign"`
	Cells     int    `json:"cells"`
	Done      int    `json:"done"`
	Failed    int    `json:"failed"`
	Leases    int    `json:"leases"`
	Steals    int    `json:"steals"`
	Fences    int    `json:"fences"`
	NodesDown int    `json:"nodes_down"`
	Abandoned int    `json:"abandoned"` // superseded leases never seen terminal
	ElapsedMs int64  `json:"elapsed_ms"`

	// Mismatches lists grid points whose replicas disagreed on console
	// FNV — a determinism violation the sweep itself detects.
	Mismatches []string  `json:"fnv_mismatches,omitempty"`
	Verdicts   []Verdict `json:"verdicts"`
}

// Verdict is one cell's recorded outcome — by construction the verdict
// of the lease-holding epoch; superseded epochs are fenced at
// collection and never land here.
type Verdict struct {
	Cell       string     `json:"cell"`
	Label      string     `json:"label"`
	Node       string     `json:"node"`
	Epoch      int64      `json:"epoch"`
	Job        string     `json:"job,omitempty"`
	State      jobd.State `json:"state"`
	Kind       string     `json:"kind,omitempty"`
	Error      string     `json:"error,omitempty"`
	Cycles     uint64     `json:"cycles,omitempty"`
	Insns      int64      `json:"insns,omitempty"`
	ConsoleFNV uint64     `json:"console_fnv,omitempty"`
	ConfigKey  uint64     `json:"config_key"`
}

// Dispatcher drives one campaign across the fleet. It is single-use:
// NewDispatcher then Run once.
type Dispatcher struct {
	cfg     Config
	journal *supervisor.Journal
	nodes   []*nodeState
	cells   []*cellRun
	stales  []*staleLease
	rep     Report
}

type nodeState struct {
	Node
	down        bool
	consecFails int
	// score is a decaying failure count used to prefer reliable nodes
	// at assignment: +1 per failed request, ×0.95 per tick. A node that
	// flaps keeps a high score long after its health checks recover.
	score    float64
	inflight int
	version  jobd.Version
	// backoffUntil holds assignments off a node that answered 429
	// (queue full or tenant quota) until its stated Retry-After lapses.
	// The node stays healthy and leased cells keep polling — only new
	// leases route around it, which is what rebalances a hot node's
	// backlog onto the rest of the fleet.
	backoffUntil time.Time
}

type cellState int

const (
	cellPending cellState = iota // waiting for a lease
	cellLeased                   // submitted to a node under the current epoch
	cellDone
	cellFailed
)

// cellRun is one cell's dispatch state machine. epoch is the fencing
// token: it only moves forward, and every reassignment bumps it, so
// "current epoch" and "holds the lease" are the same statement.
type cellRun struct {
	cell   Cell
	state  cellState
	epoch  int64
	node   *nodeState
	jobID  string
	expiry time.Time
	// leasedAt is the wall clock of the first lease grant; the verdict
	// observes lease-to-verdict latency into the campaign histogram.
	leasedAt time.Time
}

// staleLease tracks a superseded epoch until it is seen terminal, so
// its eventual output is explicitly fenced (journaled) rather than
// silently racing the current lease. jobID may be unknown when the
// granting submit was ambiguous (transport error after possibly
// landing); such ghosts are resolved by re-posting the old epoch's
// idempotency key — a dedup or fresh admission names the job, a 409
// means the daemon's own fence already rejected it.
type staleLease struct {
	cellID   string
	epoch    int64
	node     *nodeState
	jobID    string
	idemKey  string
	spec     jobd.Spec
	resolved bool
}

// NewDispatcher validates the config and applies defaults.
func NewDispatcher(cfg Config) (*Dispatcher, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("fleet: no nodes configured")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 500 * time.Millisecond
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 3
	}
	if cfg.MaxEpochs <= 0 {
		cfg.MaxEpochs = 8
	}
	if cfg.Inflight <= 0 {
		cfg.Inflight = 32
	}
	if cfg.Submit == nil {
		cfg.Submit = NewClient(ClientConfig{})
	}
	if cfg.Poll == nil {
		cfg.Poll = NewClient(ClientConfig{Timeout: 2 * time.Second, Retries: -1})
	}
	d := &Dispatcher{cfg: cfg, journal: cfg.Journal}
	for _, n := range cfg.Nodes {
		d.nodes = append(d.nodes, &nodeState{Node: n})
	}
	return d, nil
}

func (d *Dispatcher) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// count increments a dispatcher counter when a registry is attached.
func (d *Dispatcher) count(name string) {
	if d.cfg.Metrics != nil {
		d.cfg.Metrics.Counter(name).Inc()
	}
}

// setGauges publishes the point-in-time fleet view after a tick. These
// are explicit Sets from the dispatch goroutine — not GaugeFunc
// callbacks — because the dispatcher's node/cell state is unlocked
// single-goroutine state a scrape must never reach into.
func (d *Dispatcher) setGauges() {
	if d.cfg.Metrics == nil {
		return
	}
	d.cfg.Metrics.Gauge("fleet.nodes.up").Set(int64(d.upCount()))
	pending, leased := 0, 0
	for _, cr := range d.cells {
		switch cr.state {
		case cellPending:
			pending++
		case cellLeased:
			leased++
		}
	}
	d.cfg.Metrics.Gauge("fleet.cells.pending").Set(int64(pending))
	d.cfg.Metrics.Gauge("fleet.cells.leased").Set(int64(leased))
	d.cfg.Metrics.Gauge("fleet.cells.terminal").Set(int64(d.terminalCount()))
}

// Run dispatches the campaign to completion (every cell terminal) or
// context cancellation, returning the merged report either way.
func (d *Dispatcher) Run(ctx context.Context, c *Campaign) (*Report, error) {
	cells, err := c.Grid()
	if err != nil {
		return nil, err
	}
	for i := range cells {
		d.cells = append(d.cells, &cellRun{cell: cells[i], epoch: 1})
	}
	d.rep.Campaign = c.Name
	d.rep.Cells = len(cells)
	start := time.Now()

	if err := d.checkFleet(ctx); err != nil {
		return nil, err
	}
	d.journal.Append(supervisor.Entry{Event: supervisor.EventCampaignStart,
		Message: fmt.Sprintf("%s: %d cell(s) across %d node(s)", c.Name, len(cells), len(d.nodes))})
	d.logf("campaign %s: %d cell(s) across %d node(s)", c.Name, len(cells), len(d.nodes))

	lastLog := time.Now()
	for {
		d.tick(ctx)
		if d.terminalCount() == len(d.cells) {
			break
		}
		if time.Since(lastLog) >= 2*time.Second {
			d.logf("progress: %d/%d terminal, %d steal(s), %d fence(s), %d/%d node(s) up",
				d.terminalCount(), len(d.cells), d.rep.Steals, d.rep.Fences,
				d.upCount(), len(d.nodes))
			lastLog = time.Now()
		}
		if err := sleepCtx(ctx, d.cfg.PollInterval); err != nil {
			d.finalize(start)
			return &d.rep, fmt.Errorf("fleet: campaign interrupted: %w", err)
		}
	}
	// Settling window: every cell has its verdict, but superseded
	// leases on reachable nodes may still be racing to completion.
	// Give them a bounded number of ticks so their fence rejections
	// land in the books instead of as "abandoned" — stales on dead
	// nodes stay abandoned, which is all a dead node can promise.
	for extra := 0; extra < 20 && d.hasLiveStales(); extra++ {
		d.healthPass(ctx)
		d.pollPass(ctx)
		if sleepCtx(ctx, d.cfg.PollInterval) != nil {
			break
		}
	}
	d.finalize(start)
	d.journal.Append(supervisor.Entry{Event: supervisor.EventCampaignDone,
		Message: fmt.Sprintf("%s: %d done, %d failed, %d steal(s), %d fence(s), %d abandoned, %d fnv mismatch(es)",
			c.Name, d.rep.Done, d.rep.Failed, d.rep.Steals, d.rep.Fences,
			d.rep.Abandoned, len(d.rep.Mismatches))})
	return &d.rep, nil
}

// checkFleet refuses mixed-version fleets: every reachable node must
// report the same protocol-schema hash, because a campaign's specs and
// verdicts cross every node and silent field drift corrupts sweeps in
// ways no later check catches. Unreachable nodes start marked down —
// losing a node is survivable, lying about the schema is not.
func (d *Dispatcher) checkFleet(ctx context.Context) error {
	type res struct {
		v   jobd.Version
		err error
	}
	results := make([]res, len(d.nodes))
	d.forEachNode(func(i int, n *nodeState) {
		results[i].v, results[i].err = d.cfg.Poll.Version(ctx, n.URL)
	})
	var ref *jobd.Version
	var refNode string
	up := 0
	for i, n := range d.nodes {
		if results[i].err != nil {
			n.down = true
			n.consecFails = d.cfg.DownAfter
			d.journal.Append(supervisor.Entry{Event: supervisor.EventNodeDown,
				Message: fmt.Sprintf("%s unreachable at campaign start: %v", n.Name, results[i].err)})
			continue
		}
		up++
		n.version = results[i].v
		if ref == nil {
			ref, refNode = &results[i].v, n.Name
		} else if results[i].v.SchemaHash != ref.SchemaHash {
			return fmt.Errorf("fleet: mixed-version fleet: %s schema %016x (%s) vs %s schema %016x (%s)",
				refNode, ref.SchemaHash, ref.Version,
				n.Name, results[i].v.SchemaHash, results[i].v.Version)
		}
	}
	if up == 0 {
		return fmt.Errorf("fleet: no reachable nodes at campaign start")
	}
	return nil
}

// tick runs one dispatch round: health, polls, lease expiry, then
// assignment. Network I/O inside a phase is parallel across nodes and
// cells with every request individually deadlined, so one wedged node
// bounds — not serializes — the tick; all state mutation happens on
// this goroutine after each phase joins.
func (d *Dispatcher) tick(ctx context.Context) {
	d.healthPass(ctx)
	d.pollPass(ctx)
	d.expiryPass()
	d.assignPass(ctx)
	for _, n := range d.nodes {
		n.score *= 0.95
	}
	d.setGauges()
}

func (d *Dispatcher) healthPass(ctx context.Context) {
	errs := make([]error, len(d.nodes))
	d.forEachNode(func(i int, n *nodeState) {
		errs[i] = d.cfg.Poll.Healthz(ctx, n.URL)
	})
	for i, n := range d.nodes {
		if errs[i] == nil {
			n.consecFails = 0
			if n.down {
				n.down = false
				d.journal.Append(supervisor.Entry{Event: supervisor.EventNodeUp, Message: n.Name})
				d.logf("node %s recovered", n.Name)
			}
			continue
		}
		n.consecFails++
		n.score++
		if !n.down && n.consecFails >= d.cfg.DownAfter {
			n.down = true
			d.rep.NodesDown++
			d.count("fleet.nodes.down_transitions")
			d.journal.Append(supervisor.Entry{Event: supervisor.EventNodeDown,
				Message: fmt.Sprintf("%s: %d consecutive health failures: %v", n.Name, n.consecFails, errs[i])})
			d.logf("node %s down (%v)", n.Name, errs[i])
		}
	}
}

// pollPass fetches the status of every leased cell and every tracked
// superseded lease on reachable nodes. A successful poll renews the
// cell's lease — renewal is the node proving it can still answer for
// the job, which is exactly the property stealing keys off.
func (d *Dispatcher) pollPass(ctx context.Context) {
	type pollItem struct {
		cr *cellRun
		sl *staleLease
		st jobd.Status
		// ghost-probe outcomes (sl with unknown job)
		dup bool
		err error
	}
	var items []*pollItem
	for _, cr := range d.cells {
		if cr.state == cellLeased && !cr.node.down {
			items = append(items, &pollItem{cr: cr})
		}
	}
	for _, sl := range d.stales {
		if !sl.resolved && !sl.node.down {
			items = append(items, &pollItem{sl: sl})
		}
	}
	forEach(len(items), func(i int) {
		it := items[i]
		switch {
		case it.cr != nil:
			it.st, it.err = d.cfg.Poll.Job(ctx, it.cr.node.URL, it.cr.jobID)
		case it.sl.jobID != "":
			it.st, it.err = d.cfg.Poll.Job(ctx, it.sl.node.URL, it.sl.jobID)
		default:
			// Ghost: resolve the ambiguous grant by re-posting the old
			// epoch under its original idempotency key.
			it.st, it.dup, it.err = d.cfg.Poll.Submit(ctx, it.sl.node.URL, it.sl.spec, it.sl.idemKey)
		}
	})
	now := time.Now()
	for _, it := range items {
		switch {
		case it.cr != nil:
			d.applyCellPoll(it.cr, it.st, it.err, now)
		case it.sl.jobID != "":
			d.applyStalePoll(it.sl, it.st, it.err)
		default:
			d.applyGhostProbe(it.sl, it.st, it.err)
		}
	}
}

func (d *Dispatcher) applyCellPoll(cr *cellRun, st jobd.Status, err error, now time.Time) {
	if cr.state != cellLeased {
		return
	}
	if err != nil {
		// No renewal; the lease keeps aging toward expiry.
		cr.node.score++
		return
	}
	cr.expiry = now.Add(d.cfg.LeaseTTL)
	switch st.State {
	case jobd.StateDone:
		d.recordVerdict(cr, st)
	case jobd.StateFailed:
		d.recordVerdict(cr, st)
	}
}

// recordVerdict is the single point where a cell becomes terminal with
// an outcome — reachable only from the lease-holding epoch's poll, so
// there is exactly one verdict per cell by construction.
func (d *Dispatcher) recordVerdict(cr *cellRun, st jobd.Status) {
	v := Verdict{
		Cell:      cr.cell.ID,
		Label:     cr.cell.Label,
		Node:      cr.node.Name,
		Epoch:     cr.epoch,
		Job:       st.ID,
		State:     st.State,
		Kind:      st.Kind,
		Error:     st.Error,
		ConfigKey: cr.cell.Spec.ConfigKey(),
	}
	if st.Result != nil {
		v.Cycles = st.Result.Cycles
		v.Insns = st.Result.Insns
		v.ConsoleFNV = st.Result.ConsoleFNV
	}
	d.rep.Verdicts = append(d.rep.Verdicts, v)
	cr.node.inflight--
	if d.cfg.Metrics != nil && !cr.leasedAt.IsZero() {
		d.cfg.Metrics.Histogram("fleet.cell.latency_ms", cellLatencyBounds).
			Observe(float64(time.Since(cr.leasedAt).Milliseconds()))
	}
	if st.State == jobd.StateDone {
		cr.state = cellDone
		d.rep.Done++
		d.count("fleet.cells.done")
		d.journal.Append(supervisor.Entry{Event: supervisor.EventCellDone,
			Job: cr.cell.ID, Attempt: int(cr.epoch), Cycle: v.Cycles, Insns: v.Insns,
			Message: fmt.Sprintf("%s job %s fnv %016x", cr.node.Name, st.ID, v.ConsoleFNV)})
	} else {
		cr.state = cellFailed
		d.rep.Failed++
		d.count("fleet.cells.failed")
		d.journal.Append(supervisor.Entry{Event: supervisor.EventCellFail,
			Job: cr.cell.ID, Attempt: int(cr.epoch), Kind: st.Kind,
			Message: fmt.Sprintf("%s job %s: %s", cr.node.Name, st.ID, st.Error)})
	}
}

func (d *Dispatcher) applyStalePoll(sl *staleLease, st jobd.Status, err error) {
	if err != nil || sl.resolved {
		return
	}
	if st.State == jobd.StateDone || st.State == jobd.StateFailed {
		sl.resolved = true
		d.fence(sl, fmt.Sprintf("node %s job %s finished %s after lease was stolen; verdict discarded",
			sl.node.Name, sl.jobID, st.State))
	}
}

func (d *Dispatcher) applyGhostProbe(sl *staleLease, st jobd.Status, err error) {
	if sl.resolved {
		return
	}
	switch {
	case err == nil:
		// Either the ambiguous submit landed (dedup) or we just admitted
		// it — superseded either way; now it has a name, track it to a
		// terminal state like any other stale lease.
		sl.jobID = st.ID
	case StatusCode(err) == 409:
		// The daemon's own epoch fence rejected the stale admission:
		// defense in depth doing its job.
		sl.resolved = true
		d.fence(sl, fmt.Sprintf("node %s rejected stale re-admission: %v", sl.node.Name, err))
	case StatusCode(err) != 0:
		// A definite non-admission (422, drain, …): the ambiguous grant
		// never landed and can never produce output. Nothing to fence.
		sl.resolved = true
	}
}

func (d *Dispatcher) fence(sl *staleLease, msg string) {
	d.rep.Fences++
	d.count("fleet.leases.fenced")
	d.journal.Append(supervisor.Entry{Event: supervisor.EventFenceReject,
		Job: sl.cellID, Attempt: int(sl.epoch), Message: msg})
	d.logf("fenced: cell %s epoch %d: %s", sl.cellID, sl.epoch, msg)
}

// expiryPass steals leases that aged out: the holding node has not
// successfully answered a poll for LeaseTTL (dead, partitioned, or
// hopelessly slow), so the cell is re-leased at the next epoch. The
// superseded epoch stays tracked for fencing. Stealing waits for a
// live node to exist — burning the epoch budget while the whole fleet
// is down would turn an outage into terminal cell failures.
func (d *Dispatcher) expiryPass() {
	if d.upCount() == 0 {
		return
	}
	now := time.Now()
	for _, cr := range d.cells {
		if cr.state != cellLeased || now.Before(cr.expiry) {
			continue
		}
		cr.node.inflight--
		d.rep.Steals++
		d.count("fleet.leases.stolen")
		d.journal.Append(supervisor.Entry{Event: supervisor.EventLeaseSteal,
			Job: cr.cell.ID, Attempt: int(cr.epoch),
			Message: fmt.Sprintf("node %s unresponsive for %s; re-leasing", cr.node.Name, d.cfg.LeaseTTL)})
		d.logf("steal: cell %s epoch %d from %s", cr.cell.ID, cr.epoch, cr.node.Name)
		d.stales = append(d.stales, &staleLease{
			cellID: cr.cell.ID, epoch: cr.epoch, node: cr.node,
			jobID: cr.jobID, idemKey: d.idemKey(cr, cr.epoch), spec: d.stamped(cr, cr.epoch),
		})
		cr.node, cr.jobID = nil, ""
		d.bumpEpoch(cr)
	}
}

// bumpEpoch advances a cell to its next lease epoch, terminally
// failing it when the budget is exhausted (a cell that cannot survive
// MaxEpochs reassignments is burying the campaign, not advancing it).
func (d *Dispatcher) bumpEpoch(cr *cellRun) {
	cr.epoch++
	if int(cr.epoch) > d.cfg.MaxEpochs {
		cr.state = cellFailed
		d.rep.Failed++
		d.count("fleet.cells.failed")
		d.rep.Verdicts = append(d.rep.Verdicts, Verdict{
			Cell: cr.cell.ID, Label: cr.cell.Label, Epoch: cr.epoch,
			State: jobd.StateFailed, Kind: "lease-budget",
			Error:     fmt.Sprintf("exhausted %d lease epochs", d.cfg.MaxEpochs),
			ConfigKey: cr.cell.Spec.ConfigKey(),
		})
		d.journal.Append(supervisor.Entry{Event: supervisor.EventCellFail,
			Job: cr.cell.ID, Attempt: int(cr.epoch), Kind: "lease-budget",
			Message: fmt.Sprintf("exhausted %d lease epochs", d.cfg.MaxEpochs)})
		return
	}
	cr.state = cellPending
}

// assignPass leases pending cells to live nodes, preferring the node
// with the fewest jobs in flight and, among equals, the lowest failure
// score — graceful degradation falls out: a down node gets nothing,
// a flaky node gets less, a dead fleet gets a quiet tick.
func (d *Dispatcher) assignPass(ctx context.Context) {
	type sub struct {
		cr  *cellRun
		n   *nodeState
		st  jobd.Status
		err error
	}
	var subs []*sub
	for _, cr := range d.cells {
		if cr.state != cellPending {
			continue
		}
		n := d.pickNode()
		if n == nil {
			break // no live node with capacity; try next tick
		}
		// Account the lease before the request flies so this pass's own
		// placement decisions see it.
		n.inflight++
		cr.state, cr.node = cellLeased, n
		cr.expiry = time.Now().Add(d.cfg.LeaseTTL)
		subs = append(subs, &sub{cr: cr, n: n})
	}
	forEach(len(subs), func(i int) {
		s := subs[i]
		spec := d.stamped(s.cr, s.cr.epoch)
		s.st, _, s.err = d.cfg.Submit.Submit(ctx, s.n.URL, spec, d.idemKey(s.cr, s.cr.epoch))
	})
	for _, s := range subs {
		if s.err == nil {
			s.cr.jobID = s.st.ID
			s.cr.expiry = time.Now().Add(d.cfg.LeaseTTL)
			if s.cr.leasedAt.IsZero() {
				s.cr.leasedAt = time.Now()
			}
			d.rep.Leases++
			d.count("fleet.leases.granted")
			d.journal.Append(supervisor.Entry{Event: supervisor.EventLeaseGrant,
				Job: s.cr.cell.ID, Attempt: int(s.cr.epoch),
				Message: fmt.Sprintf("%s job %s", s.n.Name, s.st.ID)})
			continue
		}
		// The lease never took; undo it.
		s.n.inflight--
		s.n.score++
		s.cr.node, s.cr.jobID = nil, ""
		switch code := StatusCode(s.err); {
		case code == 409:
			// Fenced: the daemon has seen a higher epoch for this cell
			// than we believe current (e.g. a prior dispatcher run).
			// Advance past it rather than retrying into the fence.
			d.fence(&staleLease{cellID: s.cr.cell.ID, epoch: s.cr.epoch, node: s.n},
				fmt.Sprintf("node %s fenced our submission: %v", s.n.Name, s.err))
			d.bumpEpoch(s.cr)
		case code == 429:
			// Backpressure (queue full or this campaign's tenant at
			// quota): hold new leases off the node for its stated
			// Retry-After and let the cell re-lease elsewhere next tick —
			// rebalancing to less-loaded nodes instead of hot-retrying
			// one. The cell itself stays safe to retry: not admitted.
			ra := RetryAfterOf(s.err)
			if ra <= 0 {
				ra = 4 * d.cfg.PollInterval
			}
			s.n.backoffUntil = time.Now().Add(ra)
			d.count("fleet.submit.throttled")
			d.logf("throttled: node %s 429, backing off %s (cell %s re-leases elsewhere)",
				s.n.Name, ra, s.cr.cell.ID)
			s.cr.state = cellPending
		case code != 0:
			// Definite rejection (422, drain): not admitted, safe to
			// retry the same epoch later.
			s.cr.state = cellPending
		default:
			// Transport-level failure: the submit may or may not have
			// landed. Track the possibly-live epoch as a ghost stale
			// lease and move on at the next epoch — never run two nodes
			// under the same epoch.
			d.stales = append(d.stales, &staleLease{
				cellID: s.cr.cell.ID, epoch: s.cr.epoch, node: s.n,
				idemKey: d.idemKey(s.cr, s.cr.epoch), spec: d.stamped(s.cr, s.cr.epoch),
			})
			d.bumpEpoch(s.cr)
		}
	}
}

// pickNode returns the live node with spare capacity that has the
// fewest in-flight leases (ties broken by failure score), or nil.
// Nodes inside a 429 backoff window are skipped: they told us their
// queue (or our tenant's quota there) is full, so new leases flow to
// the rest of the fleet until the window lapses.
func (d *Dispatcher) pickNode() *nodeState {
	now := time.Now()
	var best *nodeState
	for _, n := range d.nodes {
		if n.down || n.inflight >= d.cfg.Inflight || now.Before(n.backoffUntil) {
			continue
		}
		if best == nil || n.inflight < best.inflight ||
			(n.inflight == best.inflight && n.score < best.score) {
			best = n
		}
	}
	return best
}

// stamped resolves a cell's spec for submission under an epoch: the
// campaign name, cell ID and fencing token ride in the spec itself.
func (d *Dispatcher) stamped(cr *cellRun, epoch int64) jobd.Spec {
	s := cr.cell.Spec
	s.Campaign, s.Cell, s.Epoch = d.rep.Campaign, cr.cell.ID, epoch
	return s
}

func (d *Dispatcher) idemKey(cr *cellRun, epoch int64) string {
	return fmt.Sprintf("%s/%s/%d", d.rep.Campaign, cr.cell.ID, epoch)
}

// finalize closes the books: superseded leases never seen terminal are
// counted as abandoned (they can no longer produce a verdict — nothing
// collects them — but they may still be burning a node), and replica
// groups are checked for bit-identical console output.
func (d *Dispatcher) finalize(start time.Time) {
	for _, sl := range d.stales {
		if !sl.resolved {
			d.rep.Abandoned++
		}
	}
	d.rep.ElapsedMs = time.Since(start).Milliseconds()
	d.checkReplicas()
	sort.Slice(d.rep.Verdicts, func(i, j int) bool {
		return d.rep.Verdicts[i].Cell < d.rep.Verdicts[j].Cell
	})
}

// checkReplicas verifies determinism across the sweep: every done
// verdict sharing a workload ConfigKey (grid replicas) must report the
// same console FNV. Divergence is journaled as a failure — it means
// two nodes simulated the same workload to different outputs, which is
// exactly the corruption fencing and leases exist to keep out of the
// books.
func (d *Dispatcher) checkReplicas() {
	type group struct {
		fnv   uint64
		cells []string
		mixed bool
	}
	groups := map[uint64]*group{}
	for i := range d.rep.Verdicts {
		v := &d.rep.Verdicts[i]
		if v.State != jobd.StateDone {
			continue
		}
		g := groups[v.ConfigKey]
		if g == nil {
			groups[v.ConfigKey] = &group{fnv: v.ConsoleFNV, cells: []string{v.Cell}}
			continue
		}
		g.cells = append(g.cells, v.Cell)
		if v.ConsoleFNV != g.fnv {
			g.mixed = true
		}
	}
	keys := make([]uint64, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		g := groups[k]
		if !g.mixed {
			continue
		}
		msg := fmt.Sprintf("config %016x: replicas %v disagree on console fnv", k, g.cells)
		d.rep.Mismatches = append(d.rep.Mismatches, msg)
		d.journal.Append(supervisor.Entry{Event: supervisor.EventFailure,
			Kind: "fnv-mismatch", Message: msg})
	}
}

func (d *Dispatcher) terminalCount() int {
	n := 0
	for _, cr := range d.cells {
		if cr.state == cellDone || cr.state == cellFailed {
			n++
		}
	}
	return n
}

func (d *Dispatcher) hasLiveStales() bool {
	for _, sl := range d.stales {
		if !sl.resolved && !sl.node.down {
			return true
		}
	}
	return false
}

func (d *Dispatcher) upCount() int {
	n := 0
	for _, node := range d.nodes {
		if !node.down {
			n++
		}
	}
	return n
}

func (d *Dispatcher) forEachNode(fn func(i int, n *nodeState)) {
	var wg sync.WaitGroup
	for i, n := range d.nodes {
		wg.Add(1)
		go func(i int, n *nodeState) {
			defer wg.Done()
			fn(i, n)
		}(i, n)
	}
	wg.Wait()
}

// forEach runs fn(0..n-1) with bounded concurrency and joins.
func forEach(n int, fn func(i int)) {
	const workers = 16
	if n == 0 {
		return
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			fn(i)
			<-sem
		}(i)
	}
	wg.Wait()
}
