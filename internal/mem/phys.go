// Package mem implements the physical memory substrate of the full
// system simulator: machine pages addressed by MFN (machine frame
// number), 4-level x86-64 page tables, and the hardware page-table walk
// engine. As under Xen, a domain's physical pages are deliberately
// non-contiguous MFNs, so cache indexing and TLB behavior see realistic
// physical address patterns rather than a linear span from zero.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Page geometry.
const (
	PageShift = 12
	PageSize  = 1 << PageShift
	PageMask  = PageSize - 1
)

// Page is one 4 KiB machine page.
type Page [PageSize]byte

// PhysMem is the machine's physical memory: a sparse set of allocated
// machine pages. All simulator state (guest RAM, page tables, DMA
// buffers) lives here and is addressed physically.
type PhysMem struct {
	pages map[uint64]*Page
	// MFN allocation state: a deterministic linear-congruential walk
	// over a window of frame numbers produces scattered MFNs like a
	// real hypervisor under memory pressure.
	nextSeq uint64
	salt    uint64
}

// NewPhysMem creates an empty physical memory.
func NewPhysMem() *PhysMem {
	return &PhysMem{pages: make(map[uint64]*Page), salt: 0x9E3779B97F4A7C15}
}

// AllocPage allocates a fresh zeroed machine page and returns its MFN.
// Allocation order is deterministic but intentionally non-contiguous.
func (pm *PhysMem) AllocPage() uint64 {
	for {
		seq := pm.nextSeq
		pm.nextSeq++
		// Feistel-ish scatter within a 2^20-frame window (4 GiB of
		// physical space), keeping MFNs bounded but shuffled.
		h := seq * pm.salt
		mfn := (h>>44 ^ h>>20) & 0xFFFFF
		if _, ok := pm.pages[mfn]; ok {
			continue
		}
		pm.pages[mfn] = &Page{}
		return mfn
	}
}

// AllocPages allocates n pages and returns their MFNs.
func (pm *PhysMem) AllocPages(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = pm.AllocPage()
	}
	return out
}

// AllocCursor returns the allocator's sequence position, part of a
// checkpoint image: restoring it makes post-restore AllocPage calls
// produce the same scattered MFNs an uninterrupted run would.
func (pm *PhysMem) AllocCursor() uint64 { return pm.nextSeq }

// SetAllocCursor restores the allocator sequence position.
func (pm *PhysMem) SetAllocCursor(seq uint64) { pm.nextSeq = seq }

// ForEachPage visits every allocated page in ascending MFN order (a
// deterministic order, for serialization).
func (pm *PhysMem) ForEachPage(f func(mfn uint64, page *Page)) {
	mfns := make([]uint64, 0, len(pm.pages))
	for mfn := range pm.pages {
		mfns = append(mfns, mfn)
	}
	sort.Slice(mfns, func(i, j int) bool { return mfns[i] < mfns[j] })
	for _, mfn := range mfns {
		f(mfn, pm.pages[mfn])
	}
}

// InstallPage materializes a page at a specific MFN with the given
// contents (checkpoint restore). Shorter data is zero-padded.
func (pm *PhysMem) InstallPage(mfn uint64, data []byte) {
	p := &Page{}
	copy(p[:], data)
	pm.pages[mfn] = p
}

// Present reports whether mfn is an allocated machine page.
func (pm *PhysMem) Present(mfn uint64) bool {
	_, ok := pm.pages[mfn]
	return ok
}

// NumPages returns the number of allocated machine pages.
func (pm *PhysMem) NumPages() int { return len(pm.pages) }

// PagePtr returns the backing page for mfn, or nil if unallocated.
func (pm *PhysMem) PagePtr(mfn uint64) *Page { return pm.pages[mfn] }

// errBadPhys formats an unmapped-physical-address error.
func errBadPhys(pa uint64) error {
	return fmt.Errorf("mem: access to unmapped physical address %#x (mfn %#x)", pa, pa>>PageShift)
}

// Read reads size bytes (at most 8) at physical address pa,
// zero-extended into a uint64. Accesses may cross page boundaries
// (hardware handles unaligned access transparently on x86), and odd
// sizes occur as the per-page halves of split page-crossing accesses.
func (pm *PhysMem) Read(pa uint64, size uint8) (uint64, error) {
	off := pa & PageMask
	if off+uint64(size) <= PageSize {
		page := pm.pages[pa>>PageShift]
		if page == nil {
			return 0, errBadPhys(pa)
		}
		switch size {
		case 1:
			return uint64(page[off]), nil
		case 2:
			return uint64(binary.LittleEndian.Uint16(page[off:])), nil
		case 4:
			return uint64(binary.LittleEndian.Uint32(page[off:])), nil
		case 8:
			return binary.LittleEndian.Uint64(page[off:]), nil
		}
	}
	// Page-crossing or odd-sized access: assemble byte by byte.
	var v uint64
	for i := uint8(0); i < size; i++ {
		page := pm.pages[(pa+uint64(i))>>PageShift]
		if page == nil {
			return 0, errBadPhys(pa + uint64(i))
		}
		v |= uint64(page[(pa+uint64(i))&PageMask]) << (8 * i)
	}
	return v, nil
}

// Write writes the low size bytes of v at physical address pa.
func (pm *PhysMem) Write(pa uint64, v uint64, size uint8) error {
	off := pa & PageMask
	if off+uint64(size) <= PageSize {
		page := pm.pages[pa>>PageShift]
		if page == nil {
			return errBadPhys(pa)
		}
		switch size {
		case 1:
			page[off] = byte(v)
		case 2:
			binary.LittleEndian.PutUint16(page[off:], uint16(v))
		case 4:
			binary.LittleEndian.PutUint32(page[off:], uint32(v))
		case 8:
			binary.LittleEndian.PutUint64(page[off:], v)
		default:
			for i := uint8(0); i < size; i++ {
				page[off+uint64(i)] = byte(v >> (8 * i))
			}
		}
		return nil
	}
	for i := uint8(0); i < size; i++ {
		page := pm.pages[(pa+uint64(i))>>PageShift]
		if page == nil {
			return errBadPhys(pa + uint64(i))
		}
		page[(pa+uint64(i))&PageMask] = byte(v >> (8 * i))
	}
	return nil
}

// ReadBytes copies len(buf) bytes starting at physical address pa.
func (pm *PhysMem) ReadBytes(pa uint64, buf []byte) error {
	for n := 0; n < len(buf); {
		page := pm.pages[pa>>PageShift]
		if page == nil {
			return errBadPhys(pa)
		}
		off := pa & PageMask
		c := copy(buf[n:], page[off:])
		n += c
		pa += uint64(c)
	}
	return nil
}

// WriteBytes copies buf into physical memory starting at pa (used by
// the domain builder and DMA injection).
func (pm *PhysMem) WriteBytes(pa uint64, buf []byte) error {
	for n := 0; n < len(buf); {
		page := pm.pages[pa>>PageShift]
		if page == nil {
			return errBadPhys(pa)
		}
		off := pa & PageMask
		c := copy(page[off:], buf[n:])
		n += c
		pa += uint64(c)
	}
	return nil
}
