package mem

import (
	"fmt"

	"ptlsim/internal/uops"
)

// x86-64 page table entry bits.
const (
	PTEPresent  uint64 = 1 << 0
	PTEWritable uint64 = 1 << 1
	PTEUser     uint64 = 1 << 2
	PTEAccessed uint64 = 1 << 5
	PTEDirty    uint64 = 1 << 6
	PTENX       uint64 = 1 << 63

	// PTEAddrMask extracts the physical frame address from a PTE.
	PTEAddrMask uint64 = 0x000FFFFFFFFFF000
)

// Levels in the x86-64 long-mode page table tree.
const PTLevels = 4

// vaIndex extracts the 9-bit table index for the given level
// (level 3 = PML4 ... level 0 = PT).
func vaIndex(va uint64, level int) uint64 {
	return (va >> (PageShift + 9*uint(level))) & 0x1FF
}

// Canonical reports whether va is a canonical x86-64 virtual address
// (bits 63..48 are copies of bit 47).
func Canonical(va uint64) bool {
	top := int64(va) >> 47
	return top == 0 || top == -1
}

// AddressSpace manages one guest address space: a 4-level page table
// tree rooted at CR3. The domain builder uses it to construct each
// process's mappings, and the hypervisor substrate uses it to service
// paravirtual MMU-update hypercalls.
type AddressSpace struct {
	pm  *PhysMem
	cr3 uint64 // physical address of the PML4 page
}

// NewAddressSpace allocates an empty page table tree.
func NewAddressSpace(pm *PhysMem) *AddressSpace {
	root := pm.AllocPage()
	return &AddressSpace{pm: pm, cr3: root << PageShift}
}

// CR3 returns the physical address of the root table, the value the
// guest loads into the CR3 control register.
func (as *AddressSpace) CR3() uint64 { return as.cr3 }

// Map installs a translation va -> mfn with the given PTE flag bits
// (PTEPresent is implied). Intermediate tables are allocated on demand
// with user+writable permissions (leaf PTEs carry the real policy).
func (as *AddressSpace) Map(va, mfn, flags uint64) error {
	if !Canonical(va) {
		return fmt.Errorf("mem: mapping non-canonical va %#x", va)
	}
	if va&PageMask != 0 {
		return fmt.Errorf("mem: mapping unaligned va %#x", va)
	}
	tbl := as.cr3
	for level := PTLevels - 1; level > 0; level-- {
		idx := vaIndex(va, level)
		pteAddr := tbl + idx*8
		pte, err := as.pm.Read(pteAddr, 8)
		if err != nil {
			return err
		}
		if pte&PTEPresent == 0 {
			next := as.pm.AllocPage()
			pte = next<<PageShift | PTEPresent | PTEWritable | PTEUser
			if err := as.pm.Write(pteAddr, pte, 8); err != nil {
				return err
			}
		}
		tbl = pte & PTEAddrMask
	}
	leaf := tbl + vaIndex(va, 0)*8
	return as.pm.Write(leaf, mfn<<PageShift|flags|PTEPresent, 8)
}

// MapRange maps n consecutive pages starting at va onto the given MFNs.
func (as *AddressSpace) MapRange(va uint64, mfns []uint64, flags uint64) error {
	for i, mfn := range mfns {
		if err := as.Map(va+uint64(i)<<PageShift, mfn, flags); err != nil {
			return err
		}
	}
	return nil
}

// ShareTopLevel copies one PML4 slot from another address space, so
// both spaces share the entire 512 GiB subtree under it. This is how
// the guest kernel is mapped into every process address space through
// a single shared page-table subtree, as real x86-64 kernels do.
func (as *AddressSpace) ShareTopLevel(from *AddressSpace, index int) error {
	if index < 0 || index >= 512 {
		return fmt.Errorf("mem: bad PML4 index %d", index)
	}
	pte, err := as.pm.Read(from.cr3+uint64(index)*8, 8)
	if err != nil {
		return err
	}
	return as.pm.Write(as.cr3+uint64(index)*8, pte, 8)
}

// Unmap removes the translation for va (clears the leaf PTE).
func (as *AddressSpace) Unmap(va uint64) error {
	w := Walk(as.pm, as.cr3, va, Access{})
	if w.Fault != uops.FaultNone {
		return fmt.Errorf("mem: unmap of unmapped va %#x", va)
	}
	return as.pm.Write(w.PTEAddrs[w.Depth-1], 0, 8)
}

// LeafPTEAddr returns the physical address of the leaf PTE mapping va,
// walking (and requiring) present intermediate levels.
func (as *AddressSpace) LeafPTEAddr(va uint64) (uint64, error) {
	tbl := as.cr3
	for level := PTLevels - 1; level > 0; level-- {
		pte, err := as.pm.Read(tbl+vaIndex(va, level)*8, 8)
		if err != nil {
			return 0, err
		}
		if pte&PTEPresent == 0 {
			return 0, fmt.Errorf("mem: no mapping for va %#x at level %d", va, level)
		}
		tbl = pte & PTEAddrMask
	}
	return tbl + vaIndex(va, 0)*8, nil
}

// Access describes the kind of memory access being translated.
type Access struct {
	Write bool // store (needs PTEWritable, sets PTEDirty)
	User  bool // CPL 3 access (needs PTEUser)
	Exec  bool // instruction fetch (honors PTENX)
	SetAD bool // update accessed/dirty tracking bits during the walk
}

// WalkResult is the outcome of a page table walk. PTEAddrs lists the
// physical addresses of the PTEs touched, in walk order: the cycle
// accurate core issues these as a chain of dependent loads through the
// data cache, which is how TLB-miss latency emerges from the model
// rather than being a fixed constant.
type WalkResult struct {
	PTEAddrs [PTLevels]uint64
	Depth    int    // number of levels actually read
	PTE      uint64 // leaf PTE value (if reached)
	MFN      uint64 // translated machine frame number
	Fault    uops.Fault
}

// PhysAddr combines the walk result with the page offset of va.
func (w *WalkResult) PhysAddr(va uint64) uint64 {
	return w.MFN<<PageShift | va&PageMask
}

// Walk performs a full hardware page table walk for va in the address
// space rooted at cr3 (a physical address). It checks permissions at
// the leaf and optionally updates A/D bits, exactly as the microcoded
// walker in the modeled processor does.
func Walk(pm *PhysMem, cr3, va uint64, acc Access) WalkResult {
	var w WalkResult
	if !Canonical(va) {
		w.Fault = pageFaultKind(acc)
		return w
	}
	tbl := cr3 & PTEAddrMask
	for level := PTLevels - 1; level >= 0; level-- {
		pteAddr := tbl + vaIndex(va, level)*8
		w.PTEAddrs[w.Depth] = pteAddr
		w.Depth++
		pte, err := pm.Read(pteAddr, 8)
		if err != nil {
			w.Fault = pageFaultKind(acc)
			return w
		}
		if pte&PTEPresent == 0 {
			w.Fault = pageFaultKind(acc)
			return w
		}
		if level == 0 {
			if acc.Write && pte&PTEWritable == 0 {
				w.Fault = uops.FaultPageWrite
				return w
			}
			if acc.User && pte&PTEUser == 0 {
				w.Fault = pageFaultKind(acc)
				return w
			}
			if acc.Exec && pte&PTENX != 0 {
				w.Fault = uops.FaultPageExec
				return w
			}
			if acc.SetAD {
				upd := pte | PTEAccessed
				if acc.Write {
					upd |= PTEDirty
				}
				if upd != pte {
					if err := pm.Write(pteAddr, upd, 8); err != nil {
						w.Fault = pageFaultKind(acc)
						return w
					}
					pte = upd
				}
			}
			w.PTE = pte
			w.MFN = pte & PTEAddrMask >> PageShift
			return w
		}
		if acc.SetAD && pte&PTEAccessed == 0 {
			if err := pm.Write(pteAddr, pte|PTEAccessed, 8); err != nil {
				w.Fault = pageFaultKind(acc)
				return w
			}
		}
		tbl = pte & PTEAddrMask
	}
	return w
}

func pageFaultKind(acc Access) uops.Fault {
	switch {
	case acc.Exec:
		return uops.FaultPageExec
	case acc.Write:
		return uops.FaultPageWrite
	default:
		return uops.FaultPageRead
	}
}
