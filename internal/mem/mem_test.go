package mem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"ptlsim/internal/uops"
)

func TestAllocPagesUniqueAndScattered(t *testing.T) {
	pm := NewPhysMem()
	seen := map[uint64]bool{}
	contiguous := 0
	var prev uint64
	for i := 0; i < 4096; i++ {
		mfn := pm.AllocPage()
		if seen[mfn] {
			t.Fatalf("duplicate mfn %#x", mfn)
		}
		seen[mfn] = true
		if i > 0 && mfn == prev+1 {
			contiguous++
		}
		prev = mfn
	}
	// Xen-style allocation should be visibly non-contiguous.
	if contiguous > 64 {
		t.Fatalf("allocation too contiguous: %d/4096 sequential pairs", contiguous)
	}
	if pm.NumPages() != 4096 {
		t.Fatalf("NumPages = %d", pm.NumPages())
	}
}

func TestAllocDeterministic(t *testing.T) {
	a, b := NewPhysMem(), NewPhysMem()
	for i := 0; i < 100; i++ {
		if a.AllocPage() != b.AllocPage() {
			t.Fatal("allocation must be deterministic across runs")
		}
	}
}

func TestReadWriteSizes(t *testing.T) {
	pm := NewPhysMem()
	mfn := pm.AllocPage()
	base := mfn << PageShift
	// Odd sizes occur as the per-page halves of split page-crossing
	// accesses; the in-page fast path must not drop them.
	for _, size := range []uint8{1, 2, 3, 4, 5, 6, 7, 8} {
		v := uint64(0x1122334455667788) & Mask(size)
		if err := pm.Write(base+16, v, size); err != nil {
			t.Fatal(err)
		}
		got, err := pm.Read(base+16, size)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("size %d: got %#x, want %#x", size, got, v)
		}
	}
	// An odd-sized write must not clobber bytes beyond its size.
	if err := pm.Write(base+32, 0xFFFFFFFFFFFFFFFF, 8); err != nil {
		t.Fatal(err)
	}
	if err := pm.Write(base+32, 0, 7); err != nil {
		t.Fatal(err)
	}
	got, err := pm.Read(base+32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xFF00000000000000 {
		t.Fatalf("7-byte write: got %#x, want 0xFF00000000000000", got)
	}
}

// Mask is a local helper mirroring uops.Mask to avoid the dependency in
// this direction.
func Mask(size uint8) uint64 {
	if size >= 8 {
		return ^uint64(0)
	}
	return 1<<(size*8) - 1
}

func TestPageCrossingAccess(t *testing.T) {
	pm := NewPhysMem()
	m1, m2 := pm.AllocPage(), pm.AllocPage()
	// Build a virtual-physical-contiguous pair only if MFNs happen to
	// be adjacent; instead test raw physical crossing on page m1/m1+1:
	// ensure the next physical page exists by allocating until found.
	_ = m2
	next := m1 + 1
	if !pm.Present(next) {
		pm.pages[next] = &Page{}
	}
	pa := m1<<PageShift + PageSize - 3
	if err := pm.Write(pa, 0xAABBCCDDEEFF1122, 8); err != nil {
		t.Fatal(err)
	}
	got, err := pm.Read(pa, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xAABBCCDDEEFF1122 {
		t.Fatalf("page-crossing read = %#x", got)
	}
}

func TestUnmappedPhysFaults(t *testing.T) {
	pm := NewPhysMem()
	if _, err := pm.Read(0xDEAD000, 8); err == nil {
		t.Fatal("read of unmapped physical memory should error")
	}
	if err := pm.Write(0xDEAD000, 1, 1); err == nil {
		t.Fatal("write of unmapped physical memory should error")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	pm := NewPhysMem()
	mfns := pm.AllocPages(3)
	// WriteBytes requires physically contiguous range; use one page.
	base := mfns[0] << PageShift
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := pm.WriteBytes(base+100, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1000)
	if err := pm.ReadBytes(base+100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("ReadBytes mismatch")
	}
}

func TestCanonical(t *testing.T) {
	good := []uint64{0, 0x7FFFFFFFFFFF, 0xFFFF800000000000, ^uint64(0)}
	bad := []uint64{0x800000000000, 0x1000000000000, 0xFFFE800000000000}
	for _, va := range good {
		if !Canonical(va) {
			t.Errorf("%#x should be canonical", va)
		}
	}
	for _, va := range bad {
		if Canonical(va) {
			t.Errorf("%#x should not be canonical", va)
		}
	}
}

func TestMapWalkTranslate(t *testing.T) {
	pm := NewPhysMem()
	as := NewAddressSpace(pm)
	dataMFN := pm.AllocPage()
	va := uint64(0x400000)
	if err := as.Map(va, dataMFN, PTEWritable|PTEUser); err != nil {
		t.Fatal(err)
	}
	w := Walk(pm, as.CR3(), va+0x123, Access{User: true})
	if w.Fault != uops.FaultNone {
		t.Fatalf("walk fault %v", w.Fault)
	}
	if w.MFN != dataMFN {
		t.Fatalf("mfn = %#x, want %#x", w.MFN, dataMFN)
	}
	if w.PhysAddr(va+0x123) != dataMFN<<PageShift|0x123 {
		t.Fatalf("physaddr = %#x", w.PhysAddr(va+0x123))
	}
	if w.Depth != 4 {
		t.Fatalf("walk depth = %d, want 4", w.Depth)
	}
	// The four PTE addresses must be distinct physical locations.
	seen := map[uint64]bool{}
	for i := 0; i < w.Depth; i++ {
		if seen[w.PTEAddrs[i]] {
			t.Fatal("duplicate PTE address in walk")
		}
		seen[w.PTEAddrs[i]] = true
	}
}

func TestWalkFaults(t *testing.T) {
	pm := NewPhysMem()
	as := NewAddressSpace(pm)
	mfn := pm.AllocPage()
	va := uint64(0x400000)
	if err := as.Map(va, mfn, 0); err != nil { // read-only, kernel-only
		t.Fatal(err)
	}
	if w := Walk(pm, as.CR3(), va, Access{Write: true}); w.Fault != uops.FaultPageWrite {
		t.Fatalf("write to RO page: fault = %v", w.Fault)
	}
	if w := Walk(pm, as.CR3(), va, Access{User: true}); w.Fault != uops.FaultPageRead {
		t.Fatalf("user access to kernel page: fault = %v", w.Fault)
	}
	if w := Walk(pm, as.CR3(), va, Access{}); w.Fault != uops.FaultNone {
		t.Fatalf("kernel read should succeed: %v", w.Fault)
	}
	if w := Walk(pm, as.CR3(), 0x999000, Access{}); w.Fault != uops.FaultPageRead {
		t.Fatalf("unmapped va: fault = %v", w.Fault)
	}
	if w := Walk(pm, as.CR3(), 0x800000000000, Access{}); w.Fault == uops.FaultNone {
		t.Fatal("non-canonical va must fault")
	}
	// NX enforcement.
	nxMFN := pm.AllocPage()
	if err := as.Map(0x500000, nxMFN, PTEUser|PTENX); err != nil {
		t.Fatal(err)
	}
	if w := Walk(pm, as.CR3(), 0x500000, Access{Exec: true, User: true}); w.Fault != uops.FaultPageExec {
		t.Fatalf("NX fetch: fault = %v", w.Fault)
	}
}

func TestAccessedDirtyBits(t *testing.T) {
	pm := NewPhysMem()
	as := NewAddressSpace(pm)
	mfn := pm.AllocPage()
	va := uint64(0x400000)
	if err := as.Map(va, mfn, PTEWritable|PTEUser); err != nil {
		t.Fatal(err)
	}
	leaf, err := as.LeafPTEAddr(va)
	if err != nil {
		t.Fatal(err)
	}
	pte, _ := pm.Read(leaf, 8)
	if pte&(PTEAccessed|PTEDirty) != 0 {
		t.Fatal("fresh mapping should have A/D clear")
	}
	// Read with SetAD sets A only.
	Walk(pm, as.CR3(), va, Access{SetAD: true})
	pte, _ = pm.Read(leaf, 8)
	if pte&PTEAccessed == 0 || pte&PTEDirty != 0 {
		t.Fatalf("after read: pte = %#x", pte)
	}
	// Write sets D.
	Walk(pm, as.CR3(), va, Access{Write: true, SetAD: true})
	pte, _ = pm.Read(leaf, 8)
	if pte&PTEDirty == 0 {
		t.Fatalf("after write: pte = %#x", pte)
	}
	// Walk without SetAD must not modify PTEs.
	before, _ := pm.Read(leaf, 8)
	Walk(pm, as.CR3(), va, Access{})
	after, _ := pm.Read(leaf, 8)
	if before != after {
		t.Fatal("walk without SetAD modified the PTE")
	}
}

func TestUnmap(t *testing.T) {
	pm := NewPhysMem()
	as := NewAddressSpace(pm)
	mfn := pm.AllocPage()
	va := uint64(0x400000)
	if err := as.Map(va, mfn, PTEWritable); err != nil {
		t.Fatal(err)
	}
	if err := as.Unmap(va); err != nil {
		t.Fatal(err)
	}
	if w := Walk(pm, as.CR3(), va, Access{}); w.Fault == uops.FaultNone {
		t.Fatal("unmapped va should fault")
	}
}

// Property: for any set of random (va, value) pairs written through
// independently mapped pages, reading back through translation returns
// the same values — page tables never alias distinct virtual pages.
func TestTranslationAliasingProperty(t *testing.T) {
	pm := NewPhysMem()
	as := NewAddressSpace(pm)
	r := rand.New(rand.NewSource(9))
	type entry struct {
		va, val uint64
	}
	var entries []entry
	used := map[uint64]bool{}
	for i := 0; i < 200; i++ {
		va := (r.Uint64() % (1 << 40)) &^ uint64(PageMask)
		if used[va] {
			continue
		}
		used[va] = true
		mfn := pm.AllocPage()
		if err := as.Map(va, mfn, PTEWritable); err != nil {
			t.Fatal(err)
		}
		val := r.Uint64()
		w := Walk(pm, as.CR3(), va, Access{Write: true})
		if w.Fault != uops.FaultNone {
			t.Fatalf("walk fault on %#x", va)
		}
		if err := pm.Write(w.PhysAddr(va), val, 8); err != nil {
			t.Fatal(err)
		}
		entries = append(entries, entry{va, val})
	}
	for _, e := range entries {
		w := Walk(pm, as.CR3(), e.va, Access{})
		got, err := pm.Read(w.PhysAddr(e.va), 8)
		if err != nil || got != e.val {
			t.Fatalf("va %#x: got %#x want %#x (%v)", e.va, got, e.val, err)
		}
	}
}

// Property: mapping then walking any aligned canonical address yields
// the mapped MFN.
func TestMapWalkQuick(t *testing.T) {
	pm := NewPhysMem()
	as := NewAddressSpace(pm)
	f := func(vaSeed uint32) bool {
		va := uint64(vaSeed) << PageShift
		mfn := pm.AllocPage()
		if err := as.Map(va, mfn, PTEWritable|PTEUser); err != nil {
			return false
		}
		w := Walk(pm, as.CR3(), va, Access{User: true})
		return w.Fault == uops.FaultNone && w.MFN == mfn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMapRejectsBadVA(t *testing.T) {
	pm := NewPhysMem()
	as := NewAddressSpace(pm)
	if err := as.Map(0x800000000000, 1, 0); err == nil {
		t.Fatal("non-canonical map should fail")
	}
	if err := as.Map(0x1001, 1, 0); err == nil {
		t.Fatal("unaligned map should fail")
	}
}
