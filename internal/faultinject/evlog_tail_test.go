package faultinject

import (
	"strings"
	"testing"

	"ptlsim/internal/core"
	"ptlsim/internal/evlog"
	"ptlsim/internal/simerr"
)

// TestWatchdogCarriesEventTail is the paper's §11 debugging workflow
// end to end: a fault-injected run dies, and the SimError carries the
// rendered tail of the pipeline event log — the last uop-by-uop
// pipeline activity before the failure.
func TestWatchdogCarriesEventTail(t *testing.T) {
	m := benchMachine(t, 20_000)
	m.SwitchMode(core.ModeSim)
	m.SetEventLog(evlog.New(1 << 12))
	New(Spec{Kind: MemDelay, Insn: 500, Cycles: 1 << 40}).Attach(m)
	err := m.Run(0)
	se, ok := simerr.As(err)
	if !ok {
		t.Fatalf("want SimError, got %T: %v", err, err)
	}
	if se.Kind != simerr.KindLivelock {
		t.Fatalf("kind = %v, want %v", se.Kind, simerr.KindLivelock)
	}
	if se.EventTail == "" {
		t.Fatal("SimError should carry the pipeline event tail when a log is attached")
	}
	for _, want := range []string{"CYCLE", "commit"} {
		if !strings.Contains(se.EventTail, want) {
			t.Fatalf("event tail missing %q:\n%s", want, se.EventTail)
		}
	}
	if !strings.Contains(se.Detail(), "pipeline event tail:") {
		t.Fatal("Detail() should render the event tail section")
	}
}

// TestWatchdogNoLogNoTail: without an attached log the report simply
// lacks the section — the zero-cost disabled path.
func TestWatchdogNoLogNoTail(t *testing.T) {
	m := benchMachine(t, 20_000)
	m.SwitchMode(core.ModeSim)
	New(Spec{Kind: MemDelay, Insn: 500, Cycles: 1 << 40}).Attach(m)
	err := m.Run(0)
	se, ok := simerr.As(err)
	if !ok {
		t.Fatalf("want SimError, got %T: %v", err, err)
	}
	if se.EventTail != "" {
		t.Fatalf("no log attached but tail present:\n%s", se.EventTail)
	}
}
