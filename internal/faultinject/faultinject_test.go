package faultinject

import (
	"strings"
	"testing"

	"ptlsim/internal/core"
	"ptlsim/internal/guest"
	"ptlsim/internal/kern"
	"ptlsim/internal/simerr"
	"ptlsim/internal/stats"
)

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("regflip@2500:reg=r13,bit=62")
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != RegFlip || s.Insn != 2500 || s.Bit != 62 || s.Reg.String() != "r13" {
		t.Fatalf("parsed %+v", s)
	}
	s, err = ParseSpec("memdelay@1000:cycles=500000")
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != MemDelay || s.Cycles != 500000 {
		t.Fatalf("parsed %+v", s)
	}
	if _, err := ParseSpec("robcorrupt@0x40"); err != nil {
		t.Fatalf("hex trigger: %v", err)
	}
	s, err = ParseSpec("robcorrupt@1000:until=2000")
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != ROBCorrupt || s.Insn != 1000 || s.Until != 2000 {
		t.Fatalf("parsed %+v", s)
	}
	for _, bad := range []string{
		"regflip@10",               // missing reg=
		"regflip@10:reg=nosuch",    // unknown register
		"regflip@10:reg=r1,bit=64", // bit out of range
		"memdelay@10",              // missing cycles=
		"warp@10",                  // unknown kind
		"regflip:reg=r1",           // missing trigger
		"memflip@5:bit=9",          // byte-flip bit out of range
		"robcorrupt@1000:until=500",           // window ends before it starts
		"memflip@5:pa=0x1000,until=100",       // until= on a one-shot kind
		"tlbflush@5:until=100",                // until= on a one-shot kind
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("spec %q should be rejected", bad)
		}
	}
	list, err := ParseList("tlbflush@100; memflip@200:pa=0x1000,bit=3 ;")
	if err != nil || len(list) != 2 {
		t.Fatalf("list=%v err=%v", list, err)
	}
}

// benchMachine boots the timer-free rsync benchmark with the given
// watchdog threshold.
func benchMachine(t *testing.T, watchdog uint64) *core.Machine {
	t.Helper()
	cs := guest.CorpusSpec{NFiles: 1, FileSize: 1024, Seed: 5, ChangeFraction: 0.4}
	spec, err := guest.RsyncBenchmark(cs, 4_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	tree := stats.NewTree()
	spec.Tree = tree
	img, err := kern.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.WatchdogCycles = watchdog
	return core.NewMachine(img.Domain, tree, cfg)
}

// TestWatchdogCatchesStuckLoad injects an unbounded cache response
// delay — a stuck load — and asserts the commit watchdog converts the
// resulting livelock into a structured report instead of hanging.
func TestWatchdogCatchesStuckLoad(t *testing.T) {
	m := benchMachine(t, 20_000)
	m.SwitchMode(core.ModeSim)
	inj := New(Spec{Kind: MemDelay, Insn: 500, Cycles: 1 << 40})
	inj.Attach(m)
	err := m.Run(0)
	se, ok := simerr.As(err)
	if !ok {
		t.Fatalf("want SimError, got %T: %v", err, err)
	}
	if se.Kind != simerr.KindLivelock {
		t.Fatalf("kind = %v, want %v", se.Kind, simerr.KindLivelock)
	}
	if se.Cycle == 0 || se.RIP == 0 {
		t.Fatalf("missing context: cycle=%d rip=%#x", se.Cycle, se.RIP)
	}
	if !strings.Contains(se.Message, "watchdog") {
		t.Fatalf("message: %q", se.Message)
	}
	if !strings.Contains(se.Dump, "rob[") {
		t.Fatalf("dump should list in-flight ROB entries: %q", se.Dump)
	}
	if len(se.LastRIPs) == 0 {
		t.Fatal("livelock report should carry recently committed RIPs")
	}
	if len(inj.Events) != 1 {
		t.Fatalf("injection events: %+v", inj.Events)
	}
}

// TestROBCorruptionRecoveredAsSimError corrupts the pipeline's reorder
// buffer head, violating the commit stage's SOM invariant; the panic
// must surface as a structured SimError from Machine.Run, not kill the
// process.
func TestROBCorruptionRecoveredAsSimError(t *testing.T) {
	m := benchMachine(t, 0)
	m.SwitchMode(core.ModeSim)
	inj := New(Spec{Kind: ROBCorrupt, Insn: 300})
	inj.Attach(m)
	err := m.Run(0)
	se, ok := simerr.As(err)
	if !ok {
		t.Fatalf("want SimError, got %T: %v", err, err)
	}
	if se.Kind != simerr.KindPanic {
		t.Fatalf("kind = %v, want %v", se.Kind, simerr.KindPanic)
	}
	if !strings.Contains(se.Message, "ROB head not SOM") {
		t.Fatalf("message: %q", se.Message)
	}
	if se.Cycle == 0 || se.RIP == 0 {
		t.Fatalf("missing context: cycle=%d rip=%#x", se.Cycle, se.RIP)
	}
	if len(se.LastRIPs) == 0 {
		t.Fatal("panic report should carry recently committed RIPs")
	}
}

// TestTLBFlushIsTimingOnly: a transient TLB flush perturbs timing but
// must not change the architectural outcome.
func TestTLBFlushIsTimingOnly(t *testing.T) {
	run := func(specs ...Spec) *core.Machine {
		m := benchMachine(t, 0)
		m.SwitchMode(core.ModeSim)
		if len(specs) > 0 {
			New(specs...).Attach(m)
		}
		if err := m.Run(0); err != nil {
			t.Fatal(err)
		}
		return m
	}
	clean := run()
	flushed := run(Spec{Kind: TLBFlush, Insn: 1000})
	if clean.Insns() != flushed.Insns() {
		t.Fatalf("TLB flush changed committed instructions: %d vs %d",
			clean.Insns(), flushed.Insns())
	}
	if clean.Dom.Console() != flushed.Dom.Console() {
		t.Fatal("TLB flush changed program output")
	}
}

// TestMemFlipPerturbsMemory: the injected bit flip must land in
// physical memory exactly once.
func TestMemFlipPerturbsMemory(t *testing.T) {
	m := benchMachine(t, 0)
	// Pick a mapped frame: the boot page tables live at CR3.
	pa := m.Dom.VCPUs[0].CR3
	before, err := m.Dom.M.PM.Read(pa, 1)
	if err != nil {
		t.Fatal(err)
	}
	inj := New(Spec{Kind: MemFlip, Insn: 0, PA: pa, Bit: 0})
	inj.Attach(m)
	if err := m.RunUntilInsns(10, 0); err != nil {
		t.Fatal(err)
	}
	after, err := m.Dom.M.PM.Read(pa, 1)
	if err != nil {
		t.Fatal(err)
	}
	if after != before^1 {
		t.Fatalf("byte at %#x: %#x -> %#x, want bit 0 flipped once", pa, before, after)
	}
	if len(inj.Events) != 1 {
		t.Fatalf("events: %+v", inj.Events)
	}
}
