// Package faultinject is a fault-injection harness for exercising the
// simulator's guardrails: it perturbs a running machine at a chosen
// committed-instruction count with architectural register bit flips,
// physical memory bit flips, transient TLB flushes, delayed cache
// responses, or deliberate pipeline-state corruption. Architectural
// faults are the ground truth for validating the co-simulation
// divergence search (the injected instruction is exactly where the
// search must report the first divergence); timing faults exercise the
// livelock watchdog; state corruption exercises the panic-recovery
// boundary.
package faultinject

import (
	"fmt"
	"strconv"
	"strings"

	"ptlsim/internal/core"
	"ptlsim/internal/uops"
)

// Kind selects the fault model.
type Kind int

// Fault kinds.
const (
	// RegFlip sticky-ORs one bit of an architectural register at every
	// step boundary from the trigger instruction on (simulation mode
	// only). Re-applying keeps the divergence persistent, the property
	// the binary-search divergence isolation relies on.
	RegFlip Kind = iota
	// MemFlip flips one bit of a physical memory byte once.
	MemFlip
	// TLBFlush transiently flushes all core TLBs once (timing-only
	// fault: architectural state must NOT diverge).
	TLBFlush
	// MemDelay delays all cache responses by a cycle count from the
	// trigger on — a very large delay models a stuck load and trips the
	// commit watchdog.
	MemDelay
	// ROBCorrupt corrupts the reorder-buffer head once (simulation
	// mode), violating an internal invariant so the recover boundary
	// can be exercised end to end.
	ROBCorrupt
)

// String names the fault kind using its spec syntax keyword.
func (k Kind) String() string {
	switch k {
	case RegFlip:
		return "regflip"
	case MemFlip:
		return "memflip"
	case TLBFlush:
		return "tlbflush"
	case MemDelay:
		return "memdelay"
	case ROBCorrupt:
		return "robcorrupt"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Spec describes one fault to inject.
type Spec struct {
	Kind Kind
	// Insn is the committed-instruction count at or after which the
	// fault applies.
	Insn int64
	// Until, when non-zero, makes the fault persistent over the
	// committed-instruction window [Insn, Until): it re-fires at every
	// step boundary inside the window, even across a checkpoint
	// restore (the injector's one-shot latch is bypassed). This models
	// a fault bound to a code region rather than a single event — the
	// shape a run supervisor's retry loop cannot cure by replaying,
	// only by degrading the window to the sequential core. Valid for
	// regflip and robcorrupt.
	Until int64

	Reg    uops.ArchReg // RegFlip target
	Bit    uint         // RegFlip (0-63) / MemFlip (0-7) bit index
	PA     uint64       // MemFlip physical address
	Cycles uint64       // MemDelay response delay
	VCPU   int          // RegFlip target VCPU
}

// ParseSpec parses one fault spec of the form "kind@insn[:key=value,...]":
//
//	regflip@2500:reg=r13,bit=62
//	memflip@1000:pa=0x3f000,bit=3
//	tlbflush@1000
//	memdelay@1000:cycles=500000
//	robcorrupt@1000
//	robcorrupt@1000:until=2000   (persistent over insns [1000,2000))
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	head, opts, hasOpts := strings.Cut(s, ":")
	kindStr, insnStr, ok := strings.Cut(head, "@")
	if !ok {
		return spec, fmt.Errorf("faultinject: %q: want kind@insn[:opts]", s)
	}
	switch kindStr {
	case "regflip":
		spec.Kind = RegFlip
	case "memflip":
		spec.Kind = MemFlip
	case "tlbflush":
		spec.Kind = TLBFlush
	case "memdelay":
		spec.Kind = MemDelay
	case "robcorrupt":
		spec.Kind = ROBCorrupt
	default:
		return spec, fmt.Errorf("faultinject: unknown kind %q", kindStr)
	}
	insn, err := strconv.ParseInt(insnStr, 0, 64)
	if err != nil || insn < 0 {
		return spec, fmt.Errorf("faultinject: bad trigger instruction %q", insnStr)
	}
	spec.Insn = insn
	haveReg := false
	if hasOpts {
		for _, kv := range strings.Split(opts, ",") {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return spec, fmt.Errorf("faultinject: bad option %q", kv)
			}
			switch key {
			case "reg":
				r, err := regByName(val)
				if err != nil {
					return spec, err
				}
				spec.Reg, haveReg = r, true
			case "bit":
				b, err := strconv.ParseUint(val, 0, 8)
				if err != nil {
					return spec, fmt.Errorf("faultinject: bad bit %q", val)
				}
				spec.Bit = uint(b)
			case "pa":
				pa, err := strconv.ParseUint(val, 0, 64)
				if err != nil {
					return spec, fmt.Errorf("faultinject: bad pa %q", val)
				}
				spec.PA = pa
			case "cycles":
				c, err := strconv.ParseUint(val, 0, 64)
				if err != nil {
					return spec, fmt.Errorf("faultinject: bad cycles %q", val)
				}
				spec.Cycles = c
			case "vcpu":
				v, err := strconv.Atoi(val)
				if err != nil || v < 0 {
					return spec, fmt.Errorf("faultinject: bad vcpu %q", val)
				}
				spec.VCPU = v
			case "until":
				u, err := strconv.ParseInt(val, 0, 64)
				if err != nil || u <= 0 {
					return spec, fmt.Errorf("faultinject: bad until %q", val)
				}
				spec.Until = u
			default:
				return spec, fmt.Errorf("faultinject: unknown option %q", key)
			}
		}
	}
	switch spec.Kind {
	case RegFlip:
		if !haveReg {
			return spec, fmt.Errorf("faultinject: regflip requires reg=")
		}
		if spec.Bit > 63 {
			return spec, fmt.Errorf("faultinject: regflip bit %d out of range", spec.Bit)
		}
	case MemFlip:
		if spec.Bit > 7 {
			return spec, fmt.Errorf("faultinject: memflip bit %d out of range (byte flip)", spec.Bit)
		}
	case MemDelay:
		if spec.Cycles == 0 {
			return spec, fmt.Errorf("faultinject: memdelay requires cycles=")
		}
	}
	if spec.Until > 0 {
		if spec.Kind != RegFlip && spec.Kind != ROBCorrupt {
			return spec, fmt.Errorf("faultinject: until= only applies to regflip/robcorrupt, not %s", spec.Kind)
		}
		if spec.Until <= spec.Insn {
			return spec, fmt.Errorf("faultinject: until=%d must exceed trigger insn %d", spec.Until, spec.Insn)
		}
	}
	return spec, nil
}

// ParseList parses a ';'-separated list of specs (empty input → nil).
func ParseList(s string) ([]Spec, error) {
	var out []Spec
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		spec, err := ParseSpec(part)
		if err != nil {
			return nil, err
		}
		out = append(out, spec)
	}
	return out, nil
}

// regByName resolves an architectural register by its assembly name
// (case-insensitive).
func regByName(name string) (uops.ArchReg, error) {
	for r := uops.ArchReg(0); r < uops.NumArchRegs; r++ {
		if strings.EqualFold(r.String(), name) {
			return r, nil
		}
	}
	return 0, fmt.Errorf("faultinject: unknown register %q", name)
}

// Event records one fault application.
type Event struct {
	Spec  int // index into the injector's spec list
	Insn  int64
	Cycle uint64
	Desc  string
}

// Injector applies a set of fault specs to a machine through its step
// hook.
type Injector struct {
	specs []Spec
	fired []bool
	// Events logs each fault application (sticky RegFlip logs only its
	// first application).
	Events []Event
}

// New builds an injector for the given specs.
func New(specs ...Spec) *Injector {
	return &Injector{specs: specs, fired: make([]bool, len(specs))}
}

// Attach installs the injector as m's step hook. A checkpoint Runner
// carries the hook across machine swaps automatically; the injector's
// fired state lives here, outside any one machine instance.
func (inj *Injector) Attach(m *core.Machine) {
	m.SetStepHook(inj.Hook)
}

// Hook is the step-hook entry point (exported so callers composing
// multiple hooks can chain it).
func (inj *Injector) Hook(m *core.Machine) {
	n := m.Insns()
	for i := range inj.specs {
		s := &inj.specs[i]
		if n < s.Insn || (s.Until > 0 && n >= s.Until) {
			continue
		}
		switch s.Kind {
		case RegFlip:
			if m.Mode() != core.ModeSim || s.VCPU >= len(m.Dom.VCPUs) {
				continue
			}
			ctx := m.Dom.VCPUs[s.VCPU]
			bit := uint64(1) << s.Bit
			ctx.Regs[s.Reg] |= bit
			if !inj.fired[i] {
				inj.record(i, n, m.Cycle, fmt.Sprintf("set %s bit %d on vcpu %d", s.Reg, s.Bit, s.VCPU))
			}
		case MemFlip:
			if inj.fired[i] {
				continue
			}
			v, err := m.Dom.M.PM.Read(s.PA, 1)
			if err != nil {
				// Unmapped target: report the miss but do not retry.
				inj.record(i, n, m.Cycle, fmt.Sprintf("memflip pa %#x unmapped", s.PA))
				continue
			}
			_ = m.Dom.M.PM.Write(s.PA, v^(1<<s.Bit), 1)
			inj.record(i, n, m.Cycle, fmt.Sprintf("flipped pa %#x bit %d", s.PA, s.Bit))
		case TLBFlush:
			if inj.fired[i] {
				continue
			}
			for _, c := range m.OOOCores() {
				c.FlushTLB()
			}
			inj.record(i, n, m.Cycle, "flushed all TLBs")
		case MemDelay:
			if inj.fired[i] {
				continue
			}
			until := m.Cycle + s.Cycles
			for _, c := range m.OOOCores() {
				c.Hierarchy().SetResponseDelay(until)
			}
			inj.record(i, n, m.Cycle, fmt.Sprintf("delaying cache responses until cycle %d", until))
		case ROBCorrupt:
			// A windowed (until=) corruption bypasses the one-shot
			// latch: it re-fires on every step inside the window, so a
			// checkpoint restore that replays the window hits it again.
			if (inj.fired[i] && s.Until == 0) || m.Mode() != core.ModeSim {
				continue
			}
			// The ROB may be empty at this boundary; retry each step
			// until an in-flight entry exists to corrupt.
			for _, c := range m.OOOCores() {
				if c.CorruptROBHead() {
					if !inj.fired[i] {
						inj.record(i, n, m.Cycle, fmt.Sprintf("corrupted ROB head of core %d", c.ID))
					}
					break
				}
			}
		}
	}
}

func (inj *Injector) record(i int, n int64, cycle uint64, desc string) {
	inj.fired[i] = true
	inj.Events = append(inj.Events, Event{Spec: i, Insn: n, Cycle: cycle, Desc: desc})
}
