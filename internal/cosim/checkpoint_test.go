package cosim

import (
	"strings"
	"testing"

	"ptlsim/internal/core"
	"ptlsim/internal/faultinject"
	"ptlsim/internal/hv"
	"ptlsim/internal/kern"
	"ptlsim/internal/stats"
	"ptlsim/internal/uops"
	"ptlsim/internal/x86"
)

// TestCheckpointedDivergenceFindsInjectedFault injects a sticky
// register bit flip at a known committed-instruction count and asserts
// the checkpoint-accelerated search isolates exactly that instruction
// while replaying far fewer instructions than restart-from-zero
// bisection would.
func TestCheckpointedDivergenceFindsInjectedFault(t *testing.T) {
	const fault = 2500
	const interval = 1000
	spec, err := faultinject.ParseSpec("regflip@2500:reg=r13,bit=62")
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(spec)
	n, diag, st, err := FirstDivergenceCheckpointed(
		timerlessBench(t), core.DefaultConfig(), 4000, interval, inj.Attach)
	if err != nil {
		t.Fatal(err)
	}
	if n != fault {
		t.Fatalf("first divergence at %d, want %d (diag: %s)", n, fault, diag)
	}
	if diag == "" || !strings.Contains(diag, "r13") {
		t.Fatalf("diagnosis should name the corrupted register: %q", diag)
	}

	// Replayed-cycle accounting: the scan stopped at the first bad
	// boundary and bisection resumed from the preceding checkpoint.
	if st.Probes == 0 {
		t.Fatal("bisection issued no probes")
	}
	if st.ScanInsns != 3000 {
		t.Fatalf("scan replayed %d insns, want 3000 (stop at first bad boundary)", st.ScanInsns)
	}
	// Each probe replays at most 2*interval insns from the checkpoint.
	if st.ProbeInsns > int64(st.Probes)*2*interval {
		t.Fatalf("probe replay %d exceeds checkpoint window bound", st.ProbeInsns)
	}
	if st.ScanInsns+st.ProbeInsns >= st.NaiveInsns {
		t.Fatalf("checkpoints bought nothing: replayed %d (scan %d + probes %d) vs naive %d",
			st.ScanInsns+st.ProbeInsns, st.ScanInsns, st.ProbeInsns, st.NaiveInsns)
	}
}

// TestCheckpointedDivergenceAtOrigin: instrumentation that corrupts
// architectural state at attach time diverges before the first
// simulated instruction executes. The search must report the
// divergence at the search origin (instruction 0 for a fresh build)
// instead of blaming instruction 1 — the scan has to compare at the
// first boundary, not only after running the first window.
func TestCheckpointedDivergenceAtOrigin(t *testing.T) {
	corrupt := func(m *core.Machine) {
		m.Dom.VCPUs[0].Regs[uops.RegR12] ^= 1 << 40
	}
	n, diag, st, err := FirstDivergenceCheckpointed(
		timerlessBench(t), core.DefaultConfig(), 3000, 1000, corrupt)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("attach-time corruption attributed to instruction %d, want 0 (diag: %s)", n, diag)
	}
	if !strings.Contains(diag, "r12") {
		t.Fatalf("diagnosis should name the corrupted register: %q", diag)
	}
	if st.Probes != 0 {
		t.Fatalf("origin divergence needs no bisection, issued %d probes", st.Probes)
	}
}

// scrubbedConsoleGuest builds a guest whose only observable output is
// what it prints: it stores a marker value to its data page up front,
// spins a register-mixing filler loop, prints the stored qword, then
// zeroes every touched register before exit. Corrupting the data page
// mid-loop changes the console bytes but leaves the final
// architectural state bit-identical — divergence a register compare
// alone cannot see.
func scrubbedConsoleGuest(t *testing.T) DomainBuilder {
	t.Helper()
	a := x86.NewAssembler(kern.UserTextVA)
	a.Mov(x86.R(x86.RBX), x86.I(0x5AA5C33C))
	a.Mov(x86.MAbs(int32(kern.UserDataVA)), x86.R(x86.RBX))
	a.Mov(x86.R(x86.RCX), x86.I(120))
	loop := a.Mark()
	a.Imul3(x86.RBX, x86.R(x86.RBX), 3)
	a.Add(x86.R(x86.RBX), x86.I(1))
	a.Dec(x86.R(x86.RCX))
	a.Jcc(x86.CondNE, loop)
	a.Mov(x86.R(x86.RDI), x86.I(int64(kern.UserDataVA)))
	a.Mov(x86.R(x86.RSI), x86.I(8))
	a.Mov(x86.R(x86.RAX), x86.I(kern.SysConsWrite))
	a.Syscall()
	a.Xor(x86.R(x86.RBX), x86.R(x86.RBX))
	a.Xor(x86.R(x86.RCX), x86.R(x86.RCX))
	a.Xor(x86.R(x86.RDI), x86.R(x86.RDI))
	a.Xor(x86.R(x86.RSI), x86.R(x86.RSI))
	a.Xor(x86.R(x86.RAX), x86.R(x86.RAX)) // SysExit
	a.Syscall()
	code, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return func() (*hv.Domain, error) {
		img, err := kern.Build(kern.BuildSpec{
			Procs: []kern.ProcSpec{{Name: "scrub", Code: code, DataPages: 1}},
			Tree:  stats.NewTree(),
		})
		if err != nil {
			return nil, err
		}
		return img.Domain, nil
	}
}

// TestCheckpointedDivergenceFinalPartialWindow: a fault landing in the
// final partial window, close enough to the guest's natural shutdown
// that both engines coast into post-shutdown state before the window
// boundary — and with the guest scrubbing its registers on exit, the
// final contexts compare architecturally equal. The search must also
// compare where the engines stopped and what they printed; without
// that, the scan reports a clean run.
func TestCheckpointedDivergenceFinalPartialWindow(t *testing.T) {
	build := scrubbedConsoleGuest(t)

	// Measure the guest's natural length G, then search to G+100 with
	// a single full-run window so the divergence, the shutdown, and
	// the search bound all share the final (and only) partial window.
	dom, err := build()
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewMachine(dom, stats.NewTree(), core.DefaultConfig())
	m.SwitchMode(core.ModeNative)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	g := m.Insns()
	if g < 500 {
		t.Fatalf("guest too short for this test: %d insns", g)
	}

	// Corrupt the stored marker qword mid-loop (while the guest is in
	// user mode, well after the store and well before the print): the
	// filler loop is 4 instructions x 120 iterations ending ~15
	// instructions before the print, so G-300 is inside it. Registers
	// are untouched, so the divergence is observable only through the
	// console bytes the guest prints afterwards.
	trigger := g - 300
	instrument := func(m *core.Machine) {
		fired := false
		m.SetStepHook(func(m *core.Machine) {
			if fired || m.Insns() < trigger {
				return
			}
			fired = true
			ctx := m.Dom.VCPUs[0]
			var b [1]byte
			if f := ctx.ReadVirtBytes(kern.UserDataVA, b[:]); f != uops.FaultNone {
				t.Errorf("instrument read fault: %v", f)
				return
			}
			b[0] ^= 1
			if f := ctx.WriteVirtBytes(kern.UserDataVA, b[:]); f != uops.FaultNone {
				t.Errorf("instrument write fault: %v", f)
			}
		})
	}
	n, diag, _, err := FirstDivergenceCheckpointed(
		build, core.DefaultConfig(), g+100, g, instrument)
	if err != nil {
		t.Fatal(err)
	}
	if n == -1 {
		t.Fatalf("divergence at insn %d inside the final partial window was missed", trigger)
	}
	if n < trigger || n > g {
		t.Fatalf("first divergence at %d, want within [%d, %d] (diag: %s)", n, trigger, g, diag)
	}
	if diag == "" {
		t.Fatal("empty diagnosis")
	}
	if !strings.Contains(diag, "console") {
		t.Fatalf("diagnosis should blame the console output: %q", diag)
	}
}

// TestCheckpointedDivergenceCleanRun: with no fault injected, the
// checkpointed search must agree with the plain search that the
// engines never diverge.
func TestCheckpointedDivergenceCleanRun(t *testing.T) {
	n, diag, st, err := FirstDivergenceCheckpointed(
		timerlessBench(t), core.DefaultConfig(), 3000, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != -1 {
		t.Fatalf("clean run reported divergence at %d: %s", n, diag)
	}
	if st.Probes != 0 {
		t.Fatalf("clean run should not bisect, issued %d probes", st.Probes)
	}
	if st.ScanInsns != 3000 {
		t.Fatalf("scan covered %d insns, want 3000", st.ScanInsns)
	}
}
