package cosim

import (
	"strings"
	"testing"

	"ptlsim/internal/core"
	"ptlsim/internal/faultinject"
)

// TestCheckpointedDivergenceFindsInjectedFault injects a sticky
// register bit flip at a known committed-instruction count and asserts
// the checkpoint-accelerated search isolates exactly that instruction
// while replaying far fewer instructions than restart-from-zero
// bisection would.
func TestCheckpointedDivergenceFindsInjectedFault(t *testing.T) {
	const fault = 2500
	const interval = 1000
	spec, err := faultinject.ParseSpec("regflip@2500:reg=r13,bit=62")
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(spec)
	n, diag, st, err := FirstDivergenceCheckpointed(
		timerlessBench(t), core.DefaultConfig(), 4000, interval, inj.Attach)
	if err != nil {
		t.Fatal(err)
	}
	if n != fault {
		t.Fatalf("first divergence at %d, want %d (diag: %s)", n, fault, diag)
	}
	if diag == "" || !strings.Contains(diag, "r13") {
		t.Fatalf("diagnosis should name the corrupted register: %q", diag)
	}

	// Replayed-cycle accounting: the scan stopped at the first bad
	// boundary and bisection resumed from the preceding checkpoint.
	if st.Probes == 0 {
		t.Fatal("bisection issued no probes")
	}
	if st.ScanInsns != 3000 {
		t.Fatalf("scan replayed %d insns, want 3000 (stop at first bad boundary)", st.ScanInsns)
	}
	// Each probe replays at most 2*interval insns from the checkpoint.
	if st.ProbeInsns > int64(st.Probes)*2*interval {
		t.Fatalf("probe replay %d exceeds checkpoint window bound", st.ProbeInsns)
	}
	if st.ScanInsns+st.ProbeInsns >= st.NaiveInsns {
		t.Fatalf("checkpoints bought nothing: replayed %d (scan %d + probes %d) vs naive %d",
			st.ScanInsns+st.ProbeInsns, st.ScanInsns, st.ProbeInsns, st.NaiveInsns)
	}
}

// TestCheckpointedDivergenceCleanRun: with no fault injected, the
// checkpointed search must agree with the plain search that the
// engines never diverge.
func TestCheckpointedDivergenceCleanRun(t *testing.T) {
	n, diag, st, err := FirstDivergenceCheckpointed(
		timerlessBench(t), core.DefaultConfig(), 3000, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != -1 {
		t.Fatalf("clean run reported divergence at %d: %s", n, diag)
	}
	if st.Probes != 0 {
		t.Fatalf("clean run should not bisect, issued %d probes", st.Probes)
	}
	if st.ScanInsns != 3000 {
		t.Fatalf("scan covered %d insns, want 3000", st.ScanInsns)
	}
}
