// Package cosim implements PTLsim's native-mode co-simulation features
// (paper §2.3): trigger points for starting cycle accurate simulation
// at interesting program locations, statistical sampled simulation
// (simulate K instructions out of every M, spending the rest in fast
// native mode), and the self-debugging divergence search that isolates
// — by binary search over instruction counts — the first instruction
// at which the cycle accurate core's architectural state departs from
// the reference engine.
package cosim

import (
	"fmt"

	"ptlsim/internal/core"
	"ptlsim/internal/hv"
	"ptlsim/internal/stats"
	"ptlsim/internal/vm"
)

// SampleConfig describes statistical sampled simulation: simulate
// SimInsns out of every SimInsns+NativeInsns instructions.
type SampleConfig struct {
	SimInsns    int64
	NativeInsns int64
}

// RunSampled drives the machine to completion, alternating between the
// cycle accurate core and native mode at instruction boundaries.
func RunSampled(m *core.Machine, cfg SampleConfig, maxCycles uint64) error {
	if cfg.SimInsns <= 0 || cfg.NativeInsns <= 0 {
		return fmt.Errorf("cosim: sample periods must be positive")
	}
	for !m.Dom.ShutdownReq {
		if maxCycles > 0 && m.Cycle >= maxCycles {
			return fmt.Errorf("cosim: cycle budget exhausted during sampling")
		}
		m.SwitchMode(core.ModeSim)
		if err := m.RunUntilInsns(m.Insns()+cfg.SimInsns, maxCycles); err != nil {
			return err
		}
		if m.Dom.ShutdownReq {
			break
		}
		m.SwitchMode(core.ModeNative)
		if err := m.RunUntilInsns(m.Insns()+cfg.NativeInsns, maxCycles); err != nil {
			return err
		}
	}
	return nil
}

// DomainBuilder deterministically constructs a fresh copy of the guest
// under test. Deterministic reconstruction is what lets the divergence
// search re-run from the start instead of checkpointing (the paper
// isolates the domain from non-deterministic outside events for the
// same reason).
type DomainBuilder func() (*hv.Domain, error)

// Probe runs to instruction boundary n and reports whether the two
// engines agree there; diag carries a human-readable difference.
type Probe func(n int64) (equal bool, diag string, err error)

// MakeArchProbe builds a Probe comparing the functional engine against
// the cycle accurate core configured by simCfg. The guest must be free
// of timing-dependent event delivery (no timers), or instruction
// trajectories legitimately differ.
func MakeArchProbe(build DomainBuilder, simCfg core.Config) Probe {
	runTo := func(mode core.Mode, n int64) (*vm.Context, error) {
		dom, err := build()
		if err != nil {
			return nil, err
		}
		m := core.NewMachine(dom, stats.NewTree(), simCfg)
		m.SwitchMode(mode)
		if err := m.RunUntilInsns(n, 0); err != nil {
			return nil, err
		}
		return dom.VCPUs[0], nil
	}
	return func(n int64) (bool, string, error) {
		ref, err := runTo(core.ModeNative, n)
		if err != nil {
			return false, "", fmt.Errorf("cosim: reference run: %w", err)
		}
		sim, err := runTo(core.ModeSim, n)
		if err != nil {
			return false, "", fmt.Errorf("cosim: sim run: %w", err)
		}
		if vm.ArchEqual(ref, sim) {
			return true, "", nil
		}
		return false, vm.DiffArch(ref, sim), nil
	}
}

// FirstDivergence binary searches [1, max] for the smallest n at which
// probe reports divergence, assuming divergence is persistent once it
// appears (the property the paper's binary-search debugging relies
// on). Returns -1 if the engines agree everywhere up to max.
func FirstDivergence(max int64, probe Probe) (int64, string, error) {
	eq, diag, err := probe(max)
	if err != nil {
		return 0, "", err
	}
	if eq {
		return -1, "", nil
	}
	lo, hi := int64(1), max // invariant: diverged at hi, unknown below
	hiDiag := diag
	for lo < hi {
		mid := lo + (hi-lo)/2
		eq, diag, err := probe(mid)
		if err != nil {
			return 0, "", err
		}
		if eq {
			lo = mid + 1
		} else {
			hi = mid
			hiDiag = diag
		}
	}
	return hi, hiDiag, nil
}
