// Package cosim implements PTLsim's native-mode co-simulation features
// (paper §2.3): trigger points for starting cycle accurate simulation
// at interesting program locations, statistical sampled simulation
// (simulate K instructions out of every M, spending the rest in fast
// native mode), and the self-debugging divergence search that isolates
// — by binary search over instruction counts — the first instruction
// at which the cycle accurate core's architectural state departs from
// the reference engine.
package cosim

import (
	"fmt"

	"ptlsim/internal/core"
	"ptlsim/internal/hv"
	"ptlsim/internal/snapshot"
	"ptlsim/internal/stats"
	"ptlsim/internal/vm"
)

// SampleConfig describes statistical sampled simulation: simulate
// SimInsns out of every SimInsns+NativeInsns instructions.
type SampleConfig struct {
	SimInsns    int64
	NativeInsns int64
}

// RunSampled drives the machine to completion, alternating between the
// cycle accurate core and native mode at instruction boundaries.
func RunSampled(m *core.Machine, cfg SampleConfig, maxCycles uint64) error {
	if cfg.SimInsns <= 0 || cfg.NativeInsns <= 0 {
		return fmt.Errorf("cosim: sample periods must be positive")
	}
	for !m.Dom.ShutdownReq {
		if maxCycles > 0 && m.Cycle >= maxCycles {
			return fmt.Errorf("cosim: cycle budget exhausted during sampling")
		}
		m.SwitchMode(core.ModeSim)
		if err := m.RunUntilInsns(m.Insns()+cfg.SimInsns, maxCycles); err != nil {
			return err
		}
		if m.Dom.ShutdownReq {
			break
		}
		m.SwitchMode(core.ModeNative)
		if err := m.RunUntilInsns(m.Insns()+cfg.NativeInsns, maxCycles); err != nil {
			return err
		}
	}
	return nil
}

// DomainBuilder deterministically constructs a fresh copy of the guest
// under test. Deterministic reconstruction is what lets the divergence
// search re-run from the start instead of checkpointing (the paper
// isolates the domain from non-deterministic outside events for the
// same reason).
type DomainBuilder func() (*hv.Domain, error)

// Probe runs to instruction boundary n and reports whether the two
// engines agree there; diag carries a human-readable difference.
type Probe func(n int64) (equal bool, diag string, err error)

// MakeArchProbe builds a Probe comparing the functional engine against
// the cycle accurate core configured by simCfg. The guest must be free
// of timing-dependent event delivery (no timers), or instruction
// trajectories legitimately differ.
func MakeArchProbe(build DomainBuilder, simCfg core.Config) Probe {
	runTo := func(mode core.Mode, n int64) (*vm.Context, error) {
		dom, err := build()
		if err != nil {
			return nil, err
		}
		m := core.NewMachine(dom, stats.NewTree(), simCfg)
		m.SwitchMode(mode)
		if err := m.RunUntilInsns(n, 0); err != nil {
			return nil, err
		}
		return dom.VCPUs[0], nil
	}
	return func(n int64) (bool, string, error) {
		ref, err := runTo(core.ModeNative, n)
		if err != nil {
			return false, "", fmt.Errorf("cosim: reference run: %w", err)
		}
		sim, err := runTo(core.ModeSim, n)
		if err != nil {
			return false, "", fmt.Errorf("cosim: sim run: %w", err)
		}
		if vm.ArchEqual(ref, sim) {
			return true, "", nil
		}
		return false, vm.DiffArch(ref, sim), nil
	}
}

// ReplayStats accounts the instructions a divergence search replayed,
// quantifying the speedup checkpoints buy over restart-from-zero
// probing.
type ReplayStats struct {
	// ScanInsns is what the lockstep interval scan executed on the
	// simulated engine.
	ScanInsns int64
	// ProbeInsns is what the bisection probes executed (both engines,
	// resumed from the nearest checkpoint).
	ProbeInsns int64
	// NaiveInsns is what the same probe sequence would have executed
	// had each probe restarted both engines from instruction zero.
	NaiveInsns int64
	// Probes is the number of bisection probes issued.
	Probes int
}

// FirstDivergenceCheckpointed isolates the first diverging instruction
// like FirstDivergence, but accelerates the search with checkpoints:
// the reference (native) engine runs once to max, capturing an encoded
// machine image every interval instructions; a lockstep scan runs the
// simulated engine between boundaries to find the first bad interval;
// bisection then resumes both engines from the checkpoint preceding
// that interval instead of replaying from instruction zero. instrument
// (optional) is applied to every simulated-engine machine — e.g. a
// faultinject.Injector.Attach — so injected faults survive the
// restore-based probing. Returns -1 if the engines agree up to max.
func FirstDivergenceCheckpointed(build DomainBuilder, simCfg core.Config, max, interval int64,
	instrument func(*core.Machine)) (int64, string, ReplayStats, error) {
	if max <= 0 || interval <= 0 {
		return 0, "", ReplayStats{}, fmt.Errorf("cosim: max and interval must be positive")
	}
	dom, err := build()
	if err != nil {
		return 0, "", ReplayStats{}, err
	}
	ref := core.NewMachine(dom, stats.NewTree(), simCfg)
	return firstDivergenceFrom(ref, simCfg, max, interval, instrument)
}

// FirstDivergenceFromImage runs the same checkpointed divergence search
// seeded from a restored machine image instead of a deterministic
// domain rebuild — the supervisor's triage path for oracle-detected
// divergences: the nearest rotated checkpoint slot becomes the search
// origin, so only the window between that slot and the failure is
// replayed. Restoring (rather than rebuilding) preserves the absolute
// instruction and cycle counters, so instrumentation with absolute
// triggers (fault injection windows) reproduces the original
// trajectory. max is the absolute committed-instruction bound to
// search up to; the image must precede it.
func FirstDivergenceFromImage(img *snapshot.Image, simCfg core.Config, max, interval int64,
	instrument func(*core.Machine)) (int64, string, ReplayStats, error) {
	ref, err := snapshot.Restore(img, simCfg)
	if err != nil {
		return 0, "", ReplayStats{}, fmt.Errorf("cosim: seed restore: %w", err)
	}
	ref.SwitchMode(core.ModeNative)
	return firstDivergenceFrom(ref, simCfg, max, interval, instrument)
}

// firstDivergenceFrom is the shared search engine: ref supplies the
// start state (at its current committed-instruction count) and runs
// the native reference pass; bounds span [ref.Insns(), max].
func firstDivergenceFrom(ref *core.Machine, simCfg core.Config, max, interval int64,
	instrument func(*core.Machine)) (int64, string, ReplayStats, error) {
	var st ReplayStats
	start := ref.Insns()
	if max <= start {
		return 0, "", st, fmt.Errorf("cosim: search bound %d not past start instruction count %d", max, start)
	}
	if interval <= 0 {
		return 0, "", st, fmt.Errorf("cosim: interval must be positive")
	}
	// Boundary instruction counts start, start+interval, ..., max.
	var bounds []int64
	for n := start; n < max; n += interval {
		bounds = append(bounds, n)
	}
	bounds = append(bounds, max)

	// Reference run: one native pass, checkpointing at every boundary.
	// Images go through encoded bytes so probes exercise the same
	// restore path an on-disk checkpoint would. Besides the
	// architectural context, record the committed-instruction count and
	// console output at each boundary: when the guest shuts down inside
	// a window, both engines coast to post-shutdown idle contexts that
	// can compare architecturally equal even though their trajectories
	// differed — the stop count and console are what still tell them
	// apart.
	images := make([][]byte, len(bounds))
	refCtx := make([]*vm.Context, len(bounds))
	refInsns := make([]int64, len(bounds))
	refCons := make([]string, len(bounds))
	for k, n := range bounds {
		if err := ref.RunUntilInsns(n, 0); err != nil {
			return 0, "", st, fmt.Errorf("cosim: reference run: %w", err)
		}
		img, err := snapshot.Capture(ref).Encode()
		if err != nil {
			return 0, "", st, err
		}
		images[k] = img
		refCtx[k] = ref.Dom.VCPUs[0].Clone()
		refInsns[k] = ref.Insns()
		refCons[k] = ref.Dom.Console()
	}

	restoreFrom := func(k int, mode core.Mode) (*core.Machine, error) {
		img, err := snapshot.Decode(images[k])
		if err != nil {
			return nil, err
		}
		m, err := snapshot.Restore(img, simCfg)
		if err != nil {
			return nil, err
		}
		m.SwitchMode(mode)
		if mode == core.ModeSim && instrument != nil {
			instrument(m)
		}
		return m, nil
	}

	// compare checks the simulated engine against the reference record
	// at boundary k on every dimension divergence is observable in:
	// where the engine stopped, what it printed, and the architectural
	// state.
	compare := func(k int, m *core.Machine) (bool, string) {
		if got, want := m.Insns(), refInsns[k]; got != want {
			return false, fmt.Sprintf(
				"engines stopped at different instruction counts at boundary %d: ref %d, sim %d",
				bounds[k], want, got)
		}
		if got, want := m.Dom.Console(), refCons[k]; got != want {
			return false, fmt.Sprintf(
				"console output differs at boundary %d (ref %d bytes, sim %d bytes)",
				bounds[k], len(want), len(got))
		}
		if !vm.ArchEqual(refCtx[k], m.Dom.VCPUs[0]) {
			return false, vm.DiffArch(refCtx[k], m.Dom.VCPUs[0])
		}
		return true, ""
	}

	// Lockstep scan: run the simulated engine boundary to boundary,
	// comparing against the reference at each. The check at boundary 0
	// catches divergence already present at the search origin —
	// instrumentation that corrupts state at attach time diverges
	// before the first simulated instruction, and a result equal to
	// start (instruction 0 for a fresh build) reports exactly that
	// instead of misattributing it to start+1.
	simM, err := restoreFrom(0, core.ModeSim)
	if err != nil {
		return 0, "", st, err
	}
	if eq, diag := compare(0, simM); !eq {
		return bounds[0], diag, st, nil
	}
	badK := -1
	var diag string
	for k := 1; k < len(bounds); k++ {
		if err := simM.RunUntilInsns(bounds[k], 0); err != nil {
			return 0, "", st, fmt.Errorf("cosim: scan run: %w", err)
		}
		st.ScanInsns += bounds[k] - bounds[k-1]
		if eq, d := compare(k, simM); !eq {
			badK = k
			diag = d
			break
		}
	}
	if badK < 0 {
		return -1, "", st, nil
	}

	// Bisect (bounds[badK-1], bounds[badK]], resuming both engines from
	// the checkpoint just before the bad interval.
	base := bounds[badK-1]
	probe := func(n int64) (bool, string, error) {
		st.Probes++
		st.ProbeInsns += 2 * (n - base)
		st.NaiveInsns += 2 * (n - start)
		refP, err := restoreFrom(badK-1, core.ModeNative)
		if err != nil {
			return false, "", err
		}
		if err := refP.RunUntilInsns(n, 0); err != nil {
			return false, "", fmt.Errorf("cosim: reference probe: %w", err)
		}
		simP, err := restoreFrom(badK-1, core.ModeSim)
		if err != nil {
			return false, "", err
		}
		if err := simP.RunUntilInsns(n, 0); err != nil {
			return false, "", fmt.Errorf("cosim: sim probe: %w", err)
		}
		// Same three dimensions as the scan: a probe past a guest
		// shutdown stops both engines early, where the stop count and
		// console still distinguish diverged trajectories.
		if got, want := simP.Insns(), refP.Insns(); got != want {
			return false, fmt.Sprintf(
				"engines stopped at different instruction counts probing %d: ref %d, sim %d",
				n, want, got), nil
		}
		if got, want := simP.Dom.Console(), refP.Dom.Console(); got != want {
			return false, fmt.Sprintf(
				"console output differs probing %d (ref %d bytes, sim %d bytes)",
				n, len(want), len(got)), nil
		}
		if vm.ArchEqual(refP.Dom.VCPUs[0], simP.Dom.VCPUs[0]) {
			return true, "", nil
		}
		return false, vm.DiffArch(refP.Dom.VCPUs[0], simP.Dom.VCPUs[0]), nil
	}
	lo, hi := base+1, bounds[badK] // invariant: diverged at hi (scan proved it)
	hiDiag := diag
	for lo < hi {
		mid := lo + (hi-lo)/2
		eq, d, err := probe(mid)
		if err != nil {
			return 0, "", st, err
		}
		if eq {
			lo = mid + 1
		} else {
			hi = mid
			hiDiag = d
		}
	}
	return hi, hiDiag, st, nil
}

// FirstDivergence binary searches [1, max] for the smallest n at which
// probe reports divergence, assuming divergence is persistent once it
// appears (the property the paper's binary-search debugging relies
// on). Returns -1 if the engines agree everywhere up to max.
func FirstDivergence(max int64, probe Probe) (int64, string, error) {
	eq, diag, err := probe(max)
	if err != nil {
		return 0, "", err
	}
	if eq {
		return -1, "", nil
	}
	lo, hi := int64(1), max // invariant: diverged at hi, unknown below
	hiDiag := diag
	for lo < hi {
		mid := lo + (hi-lo)/2
		eq, diag, err := probe(mid)
		if err != nil {
			return 0, "", err
		}
		if eq {
			lo = mid + 1
		} else {
			hi = mid
			hiDiag = diag
		}
	}
	return hi, hiDiag, nil
}
