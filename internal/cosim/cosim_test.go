package cosim

import (
	"fmt"
	"strings"
	"testing"

	"ptlsim/internal/core"
	"ptlsim/internal/guest"
	"ptlsim/internal/hv"
	"ptlsim/internal/kern"
	"ptlsim/internal/ooo"
	"ptlsim/internal/stats"
)

// timerlessBench builds a deterministic, timer-free rsync domain.
func timerlessBench(t *testing.T) DomainBuilder {
	t.Helper()
	cs := guest.CorpusSpec{NFiles: 1, FileSize: 1024, Seed: 5, ChangeFraction: 0.4}
	return func() (*hv.Domain, error) {
		spec, err := guest.RsyncBenchmark(cs, 4_000_000_000)
		if err != nil {
			return nil, err
		}
		spec.Tree = stats.NewTree()
		img, err := kern.Build(spec)
		if err != nil {
			return nil, err
		}
		return img.Domain, nil
	}
}

func TestArchProbeAgrees(t *testing.T) {
	probe := MakeArchProbe(timerlessBench(t), core.DefaultConfig())
	for _, n := range []int64{50, 500, 5000} {
		eq, diag, err := probe(n)
		if err != nil {
			t.Fatalf("probe(%d): %v", n, err)
		}
		if !eq {
			t.Fatalf("engines diverged at %d insns: %s", n, diag)
		}
	}
}

func TestNoDivergenceOnHealthyCore(t *testing.T) {
	probe := MakeArchProbe(timerlessBench(t), core.DefaultConfig())
	n, _, err := FirstDivergence(3000, probe)
	if err != nil {
		t.Fatal(err)
	}
	if n != -1 {
		t.Fatalf("healthy core reported divergence at insn %d", n)
	}
}

func TestFirstDivergenceBinarySearch(t *testing.T) {
	// Synthetic probe diverging from instruction 37 onward; the search
	// must find exactly 37 with O(log n) probes.
	probes := 0
	probe := func(n int64) (bool, string, error) {
		probes++
		return n < 37, fmt.Sprintf("diverged at %d", n), nil
	}
	n, diag, err := FirstDivergence(100000, probe)
	if err != nil {
		t.Fatal(err)
	}
	if n != 37 {
		t.Fatalf("found %d, want 37", n)
	}
	if !strings.Contains(diag, "diverged") {
		t.Fatalf("diag = %q", diag)
	}
	if probes > 25 {
		t.Fatalf("binary search used %d probes", probes)
	}
}

func TestFirstDivergenceAtOne(t *testing.T) {
	probe := func(n int64) (bool, string, error) { return false, "always", nil }
	n, _, err := FirstDivergence(1000, probe)
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestRunUntilInsnsExactBoundaries(t *testing.T) {
	build := timerlessBench(t)
	for _, mode := range []core.Mode{core.ModeNative, core.ModeSim} {
		dom, err := build()
		if err != nil {
			t.Fatal(err)
		}
		m := core.NewMachine(dom, stats.NewTree(), core.DefaultConfig())
		m.SwitchMode(mode)
		for _, target := range []int64{10, 123, 1000} {
			if err := m.RunUntilInsns(target, 0); err != nil {
				t.Fatal(err)
			}
			if got := m.Insns(); got != target {
				t.Fatalf("mode %v: stopped at %d insns, want exactly %d", mode, got, target)
			}
		}
	}
}

func TestSampledRunCompletes(t *testing.T) {
	dom, err := timerlessBench(t)()
	if err != nil {
		t.Fatal(err)
	}
	tree := stats.NewTree()
	m := core.NewMachine(dom, tree, core.DefaultConfig())
	if err := RunSampled(m, SampleConfig{SimInsns: 2000, NativeInsns: 8000}, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dom.Console(), "rsync ok") {
		t.Fatalf("console: %q", dom.Console())
	}
	// Both engines must have contributed.
	simI := tree.Lookup("core0.commit.insns").Value()
	natI := tree.Lookup("seq0.insns").Value()
	if simI == 0 || natI == 0 {
		t.Fatalf("sampling split: sim=%d native=%d", simI, natI)
	}
	if tree.Lookup("external.mode_switches").Value() < 2 {
		t.Fatal("expected multiple mode switches")
	}
}

func TestRIPTrigger(t *testing.T) {
	dom, err := timerlessBench(t)()
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewMachine(dom, stats.NewTree(), core.DefaultConfig())
	// Trigger at the kernel syscall entry: reached as soon as the
	// first process issues a syscall.
	img, _ := kern.AssembleKernel(4_000_000_000)
	if err := m.RunUntilRIP(img.SysEntry, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if dom.VCPUs[0].RIP != img.SysEntry {
		t.Fatalf("stopped at %#x", dom.VCPUs[0].RIP)
	}
	// Seamless continuation in sim mode afterwards.
	m.SwitchMode(core.ModeSim)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dom.Console(), "rsync ok") {
		t.Fatalf("console: %q", dom.Console())
	}
}

// TSC continuity across mode switches: the guest-visible TSC never
// goes backwards and the domain clock is shared by both engines.
func TestTSCContinuityAcrossSwitches(t *testing.T) {
	dom, err := timerlessBench(t)()
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewMachine(dom, stats.NewTree(), core.Config{Core: ooo.DefaultConfig(), NativeCPI: 1, ThreadsPerCore: 1})
	last := uint64(0)
	for i := 0; i < 6 && !dom.ShutdownReq; i++ {
		mode := core.ModeNative
		if i%2 == 1 {
			mode = core.ModeSim
		}
		m.SwitchMode(mode)
		if err := m.RunUntilInsns(m.Insns()+3000, 0); err != nil {
			t.Fatal(err)
		}
		tsc := dom.ReadTSC(dom.VCPUs[0])
		if tsc < last {
			t.Fatalf("TSC went backwards across switch: %d -> %d", last, tsc)
		}
		last = tsc
	}
}
