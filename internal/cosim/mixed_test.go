package cosim

import (
	"testing"

	"ptlsim/internal/core"
	"ptlsim/internal/guest"
	"ptlsim/internal/hv"
	"ptlsim/internal/kern"
	"ptlsim/internal/stats"
	"ptlsim/internal/vm"
)

func buildSmall(t *testing.T) func() (*hv.Domain, error) {
	cs := guest.CorpusSpec{NFiles: 1, FileSize: 1024, Seed: 5, ChangeFraction: 0.4}
	return func() (*hv.Domain, error) {
		spec, err := guest.RsyncBenchmark(cs, 4_000_000_000)
		if err != nil {
			return nil, err
		}
		spec.Tree = stats.NewTree()
		img, err := kern.Build(spec)
		if err != nil {
			return nil, err
		}
		return img.Domain, nil
	}
}

// runMixed runs alternating sim(2000)/native(8000) phases to target.
func runMixed(t *testing.T, build func() (*hv.Domain, error), target int64) *vm.Context {
	dom, err := build()
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewMachine(dom, stats.NewTree(), core.DefaultConfig())
	mode := core.ModeSim
	for m.Insns() < target && !dom.ShutdownReq {
		m.SwitchMode(mode)
		next := m.Insns() + 2000
		if mode == core.ModeNative {
			next = m.Insns() + 8000
		}
		if next > target {
			next = target
		}
		if err := m.RunUntilInsns(next, 0); err != nil {
			t.Fatal(err)
		}
		if mode == core.ModeSim {
			mode = core.ModeNative
		} else {
			mode = core.ModeSim
		}
	}
	return dom.VCPUs[0]
}

func runPure(t *testing.T, build func() (*hv.Domain, error), target int64) *vm.Context {
	dom, err := build()
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewMachine(dom, stats.NewTree(), core.DefaultConfig())
	if err := m.RunUntilInsns(target, 0); err != nil {
		t.Fatal(err)
	}
	return dom.VCPUs[0]
}

// The strongest co-simulation property: a run that ping-pongs between
// the native and cycle accurate engines every few thousand instructions
// commits exactly the architectural trajectory of a pure native run.
// (Two mode-switch bugs were found by this search: stale TLBs across a
// native-mode CR3 switch, and a stale fetch RIP on sim re-entry.)
func TestMixedModeNoDivergence(t *testing.T) {
	build := buildSmall(t)
	probe := func(n int64) (bool, string, error) {
		ref := runPure(t, build, n)
		mix := runMixed(t, build, n)
		if vm.ArchEqual(ref, mix) {
			return true, "", nil
		}
		return false, vm.DiffArch(ref, mix), nil
	}
	n, diag, err := FirstDivergence(60000, probe)
	if err != nil {
		t.Fatal(err)
	}
	if n >= 0 {
		t.Fatalf("mixed-mode run diverged at instruction %d: %s", n, diag)
	}
}
