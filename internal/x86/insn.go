package x86

import (
	"fmt"
	"strings"
)

// Op identifies an x86 operation after decoding. The set covers the
// integer, control-flow, atomic, string, system and scalar-FP
// instructions needed to run the guest kernel and workloads; every Op
// has a real x86-64 encoding emitted by the assembler and recognized by
// the decoder.
type Op uint8

// Operations. Grouped roughly by encoding family.
const (
	OpInvalid Op = iota

	// Integer ALU (group-1 style, r/m,r / r,r/m / r/m,imm forms).
	OpAdd
	OpOr
	OpAdc
	OpSbb
	OpAnd
	OpSub
	OpXor
	OpCmp
	OpTest

	// Data movement.
	OpMov
	OpMovzx
	OpMovsx
	OpMovsxd
	OpLea
	OpXchg
	OpPush
	OpPop

	// Shifts (group-2).
	OpShl
	OpShr
	OpSar
	OpRol
	OpRor

	// Unary group-3/4/5.
	OpNot
	OpNeg
	OpInc
	OpDec
	OpMul  // unsigned RDX:RAX = RAX * r/m
	OpImul // signed; 1-op (RDX:RAX), 2-op (r,r/m) and 3-op (r,r/m,imm)
	OpDiv  // unsigned RDX:RAX / r/m
	OpIdiv

	// Control flow.
	OpJmp  // direct relative or indirect via r/m
	OpJcc  // conditional relative
	OpCall // direct relative or indirect via r/m
	OpRet

	// Conditional data.
	OpSetcc
	OpCmovcc

	// Atomics / synchronization (with LOCK prefix where applicable).
	OpCmpxchg
	OpXadd
	OpMfence
	OpPause

	// Sign extension of accumulator.
	OpCdqe // RAX = sext(EAX)
	OpCqo  // RDX:RAX = sext(RAX)

	// String operations (with optional REP prefix).
	OpMovs
	OpStos
	OpLods

	// System instructions.
	OpNop
	OpHlt
	OpSyscall
	OpSysret
	OpIretq
	OpRdtsc
	OpCpuid
	OpPtlcall   // 0F 37: PTLsim breakout opcode (simulator control)
	OpHypercall // 0F 01 C1 (VMCALL encoding): paravirt hypercall
	OpMovToCR   // 0F 22 /r: MOV CRn, r64 (privileged)
	OpMovFromCR // 0F 20 /r: MOV r64, CRn (privileged)
	OpInvlpg    // 0F 01 /7: invalidate TLB entry (privileged)

	// Scalar double-precision FP (SSE2 subset).
	OpMovsdLoad  // F2 0F 10: MOVSD xmm, m64/xmm
	OpMovsdStore // F2 0F 11: MOVSD m64/xmm, xmm
	OpAddsd
	OpSubsd
	OpMulsd
	OpDivsd
	OpCvtsi2sd // F2 REX.W 0F 2A: xmm = double(r/m64)
	OpCvttsd2si
	OpUcomisd
	OpMovqXR // 66 REX.W 0F 6E: MOVQ xmm, r/m64
	OpMovqRX // 66 REX.W 0F 7E: MOVQ r/m64, xmm

	opCount
)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpAdd:     "add", OpOr: "or", OpAdc: "adc", OpSbb: "sbb",
	OpAnd: "and", OpSub: "sub", OpXor: "xor", OpCmp: "cmp", OpTest: "test",
	OpMov: "mov", OpMovzx: "movzx", OpMovsx: "movsx", OpMovsxd: "movsxd",
	OpLea: "lea", OpXchg: "xchg", OpPush: "push", OpPop: "pop",
	OpShl: "shl", OpShr: "shr", OpSar: "sar", OpRol: "rol", OpRor: "ror",
	OpNot: "not", OpNeg: "neg", OpInc: "inc", OpDec: "dec",
	OpMul: "mul", OpImul: "imul", OpDiv: "div", OpIdiv: "idiv",
	OpJmp: "jmp", OpJcc: "j", OpCall: "call", OpRet: "ret",
	OpSetcc: "set", OpCmovcc: "cmov",
	OpCmpxchg: "cmpxchg", OpXadd: "xadd", OpMfence: "mfence", OpPause: "pause",
	OpCdqe: "cdqe", OpCqo: "cqo",
	OpMovs: "movs", OpStos: "stos", OpLods: "lods",
	OpNop: "nop", OpHlt: "hlt",
	OpSyscall: "syscall", OpSysret: "sysret", OpIretq: "iretq",
	OpRdtsc: "rdtsc", OpCpuid: "cpuid",
	OpPtlcall: "ptlcall", OpHypercall: "hypercall",
	OpMovToCR: "mov_to_cr", OpMovFromCR: "mov_from_cr", OpInvlpg: "invlpg",
	OpMovsdLoad: "movsd", OpMovsdStore: "movsd_st",
	OpAddsd: "addsd", OpSubsd: "subsd", OpMulsd: "mulsd", OpDivsd: "divsd",
	OpCvtsi2sd: "cvtsi2sd", OpCvttsd2si: "cvttsd2si", OpUcomisd: "ucomisd",
	OpMovqXR: "movq_xr", OpMovqRX: "movq_rx",
}

// String returns the mnemonic of the operation.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// OperandKind discriminates the Operand union.
type OperandKind uint8

// Operand kinds.
const (
	KindNone OperandKind = iota
	KindReg
	KindMem
	KindImm
)

// MemRef is a decoded x86 memory reference: base + index*scale + disp,
// optionally RIP-relative (base == RIP, disp relative to the end of the
// instruction).
type MemRef struct {
	Base  Reg
	Index Reg
	Scale uint8 // 1, 2, 4 or 8
	Disp  int32
}

// String renders the memory reference in Intel-ish syntax.
func (m MemRef) String() string {
	var b strings.Builder
	b.WriteByte('[')
	sep := ""
	if m.Base != RegNone {
		b.WriteString(m.Base.String())
		sep = "+"
	}
	if m.Index != RegNone {
		fmt.Fprintf(&b, "%s%s*%d", sep, m.Index, m.Scale)
		sep = "+"
	}
	if m.Disp != 0 || sep == "" {
		if m.Disp < 0 {
			fmt.Fprintf(&b, "-0x%x", -int64(m.Disp))
		} else {
			fmt.Fprintf(&b, "%s0x%x", sep, m.Disp)
		}
	}
	b.WriteByte(']')
	return b.String()
}

// Operand is one instruction operand: a register, a memory reference or
// an immediate.
type Operand struct {
	Kind OperandKind
	Reg  Reg
	Mem  MemRef
	Imm  int64
}

// RegOp returns a register operand.
func RegOp(r Reg) Operand { return Operand{Kind: KindReg, Reg: r} }

// MemOp returns a memory operand.
func MemOp(m MemRef) Operand { return Operand{Kind: KindMem, Mem: m} }

// ImmOp returns an immediate operand.
func ImmOp(v int64) Operand { return Operand{Kind: KindImm, Imm: v} }

// String renders the operand.
func (o Operand) String() string {
	switch o.Kind {
	case KindReg:
		return o.Reg.String()
	case KindMem:
		return o.Mem.String()
	case KindImm:
		if o.Imm < 0 {
			return fmt.Sprintf("-0x%x", -o.Imm)
		}
		return fmt.Sprintf("0x%x", o.Imm)
	default:
		return ""
	}
}

// Inst is a decoded x86-64 instruction. Len is the encoded length in
// bytes; for relative branches Imm holds the signed displacement from
// the end of the instruction (hardware semantics), so the target is
// RIP_of_next + Dst.Imm.
type Inst struct {
	Op     Op
	Cond   Cond  // for Jcc / SETcc / CMOVcc
	OpSize uint8 // operand size in bytes: 1, 2, 4 or 8
	Lock   bool  // LOCK prefix present
	Rep    bool  // REP prefix present (string ops)
	Dst    Operand
	Src    Operand
	Src2   Operand // third operand (3-operand IMUL)
	Len    uint8
}

// IsBranch reports whether the instruction can redirect control flow,
// i.e. whether it terminates a basic block.
func (i *Inst) IsBranch() bool {
	switch i.Op {
	case OpJmp, OpJcc, OpCall, OpRet, OpSyscall, OpSysret, OpIretq,
		OpHlt, OpPtlcall, OpHypercall:
		return true
	}
	// REP string ops loop back to themselves: block terminator.
	if i.Rep {
		return true
	}
	return false
}

// String renders the instruction in Intel-ish syntax for logs and the
// disassembler output of cmd/ptlsim.
func (i *Inst) String() string {
	var b strings.Builder
	if i.Lock {
		b.WriteString("lock ")
	}
	if i.Rep {
		b.WriteString("rep ")
	}
	switch i.Op {
	case OpJcc:
		fmt.Fprintf(&b, "j%s", i.Cond)
	case OpSetcc:
		fmt.Fprintf(&b, "set%s", i.Cond)
	case OpCmovcc:
		fmt.Fprintf(&b, "cmov%s", i.Cond)
	default:
		b.WriteString(i.Op.String())
	}
	if i.OpSize != 0 && i.OpSize != 8 {
		fmt.Fprintf(&b, "%d", i.OpSize*8)
	}
	ops := make([]string, 0, 3)
	for _, o := range []Operand{i.Dst, i.Src, i.Src2} {
		if o.Kind != KindNone {
			ops = append(ops, o.String())
		}
	}
	if len(ops) > 0 {
		b.WriteByte(' ')
		b.WriteString(strings.Join(ops, ", "))
	}
	return b.String()
}
