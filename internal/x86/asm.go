package x86

import (
	"encoding/binary"
	"fmt"
)

// Label identifies a position in the instruction stream being
// assembled. Labels may be referenced before they are bound; the
// assembler resolves all displacements when Bytes is called.
type Label int

type fixupKind uint8

const (
	fixRel32 fixupKind = iota // 4-byte displacement from end of field
	fixAbs64                  // 8-byte absolute virtual address
)

type fixup struct {
	kind  fixupKind
	off   int // offset of the displacement field in buf
	label Label
}

// Assembler builds x86-64 machine code at a fixed base virtual address.
// It is the tool used to construct guest kernels and workload binaries,
// standing in for the compiler toolchain that produced the guest images
// in the paper's experiments.
//
// Errors are sticky: emitting continues after an error but Bytes
// returns the first one, so straight-line building code stays readable.
type Assembler struct {
	base   uint64
	buf    []byte
	labels []int64 // byte offset, or -1 when unbound
	fixups []fixup
	err    error
}

// NewAssembler returns an assembler whose first byte will live at the
// given guest virtual address.
func NewAssembler(base uint64) *Assembler {
	return &Assembler{base: base}
}

// Base returns the base virtual address.
func (a *Assembler) Base() uint64 { return a.base }

// PC returns the virtual address of the next byte to be emitted.
func (a *Assembler) PC() uint64 { return a.base + uint64(len(a.buf)) }

// Len returns the number of bytes emitted so far.
func (a *Assembler) Len() int { return len(a.buf) }

func (a *Assembler) fail(err error) {
	if a.err == nil {
		a.err = err
	}
}

// NewLabel allocates an unbound label.
func (a *Assembler) NewLabel() Label {
	a.labels = append(a.labels, -1)
	return Label(len(a.labels) - 1)
}

// Bind attaches l to the current position. A label may be bound once.
func (a *Assembler) Bind(l Label) {
	if a.labels[l] != -1 {
		a.fail(fmt.Errorf("x86: label %d bound twice", l))
		return
	}
	a.labels[l] = int64(len(a.buf))
}

// Mark returns a fresh label bound at the current position.
func (a *Assembler) Mark() Label {
	l := a.NewLabel()
	a.Bind(l)
	return l
}

// Addr returns the virtual address of a bound label. It is only valid
// after the label has been bound.
func (a *Assembler) Addr(l Label) uint64 {
	if a.labels[l] < 0 {
		a.fail(fmt.Errorf("x86: Addr of unbound label %d", l))
		return 0
	}
	return a.base + uint64(a.labels[l])
}

// Bytes resolves all fixups and returns the assembled machine code.
func (a *Assembler) Bytes() ([]byte, error) {
	if a.err != nil {
		return nil, a.err
	}
	for _, f := range a.fixups {
		target := a.labels[f.label]
		if target < 0 {
			return nil, fmt.Errorf("x86: unbound label %d", f.label)
		}
		switch f.kind {
		case fixRel32:
			disp := target - int64(f.off+4)
			if disp > 0x7FFFFFFF || disp < -0x80000000 {
				return nil, fmt.Errorf("x86: branch displacement %d out of range", disp)
			}
			binary.LittleEndian.PutUint32(a.buf[f.off:], uint32(disp))
		case fixAbs64:
			binary.LittleEndian.PutUint64(a.buf[f.off:], a.base+uint64(target))
		}
	}
	return a.buf, nil
}

// Emit encodes inst and appends it.
func (a *Assembler) Emit(inst Inst) {
	b, err := Encode(&inst)
	if err != nil {
		a.fail(err)
		return
	}
	a.buf = append(a.buf, b...)
}

// Raw appends raw bytes (data or hand-rolled encodings).
func (a *Assembler) Raw(b ...byte) { a.buf = append(a.buf, b...) }

// Quad appends a little-endian 64-bit data value.
func (a *Assembler) Quad(v uint64) {
	a.buf = binary.LittleEndian.AppendUint64(a.buf, v)
}

// Long appends a little-endian 32-bit data value.
func (a *Assembler) Long(v uint32) {
	a.buf = binary.LittleEndian.AppendUint32(a.buf, v)
}

// QuadLabel appends a 64-bit slot holding the absolute address of l,
// resolved at Bytes time.
func (a *Assembler) QuadLabel(l Label) {
	a.fixups = append(a.fixups, fixup{kind: fixAbs64, off: len(a.buf), label: l})
	a.Quad(0)
}

// Align pads with NOPs to an n-byte boundary.
func (a *Assembler) Align(n int) {
	for len(a.buf)%n != 0 {
		a.buf = append(a.buf, 0x90)
	}
}

// Operand construction helpers, exported for terse guest-building code.

// R wraps a register operand.
func R(r Reg) Operand { return RegOp(r) }

// I wraps an immediate operand.
func I(v int64) Operand { return ImmOp(v) }

// M forms a [base+disp] memory operand.
func M(base Reg, disp int32) Operand {
	return MemOp(MemRef{Base: base, Index: RegNone, Scale: 1, Disp: disp})
}

// MIdx forms a [base+index*scale+disp] memory operand.
func MIdx(base, index Reg, scale uint8, disp int32) Operand {
	return MemOp(MemRef{Base: base, Index: index, Scale: scale, Disp: disp})
}

// MAbs forms an absolute [disp32] memory operand.
func MAbs(addr int32) Operand {
	return MemOp(MemRef{Base: RegNone, Index: RegNone, Scale: 1, Disp: addr})
}

// op2 emits a two-operand instruction of the given size.
func (a *Assembler) op2(op Op, size uint8, dst, src Operand) {
	a.Emit(Inst{Op: op, OpSize: size, Dst: dst, Src: src})
}

// Sized two-operand emitters: no suffix = 64-bit, l = 32-bit,
// w = 16-bit, b = 8-bit, matching AT&T-style width conventions.

// Mov emits a 64-bit mov.
func (a *Assembler) Mov(d, s Operand) { a.op2(OpMov, 8, d, s) }

// Movl emits a 32-bit mov.
func (a *Assembler) Movl(d, s Operand) { a.op2(OpMov, 4, d, s) }

// Movw emits a 16-bit mov.
func (a *Assembler) Movw(d, s Operand) { a.op2(OpMov, 2, d, s) }

// Movb emits an 8-bit mov.
func (a *Assembler) Movb(d, s Operand) { a.op2(OpMov, 1, d, s) }

// Add emits a 64-bit add.
func (a *Assembler) Add(d, s Operand) { a.op2(OpAdd, 8, d, s) }

// Addl emits a 32-bit add.
func (a *Assembler) Addl(d, s Operand) { a.op2(OpAdd, 4, d, s) }

// Sub emits a 64-bit sub.
func (a *Assembler) Sub(d, s Operand) { a.op2(OpSub, 8, d, s) }

// Subl emits a 32-bit sub.
func (a *Assembler) Subl(d, s Operand) { a.op2(OpSub, 4, d, s) }

// Adc emits a 64-bit add-with-carry.
func (a *Assembler) Adc(d, s Operand) { a.op2(OpAdc, 8, d, s) }

// Sbb emits a 64-bit subtract-with-borrow.
func (a *Assembler) Sbb(d, s Operand) { a.op2(OpSbb, 8, d, s) }

// And emits a 64-bit and.
func (a *Assembler) And(d, s Operand) { a.op2(OpAnd, 8, d, s) }

// Andl emits a 32-bit and.
func (a *Assembler) Andl(d, s Operand) { a.op2(OpAnd, 4, d, s) }

// Or emits a 64-bit or.
func (a *Assembler) Or(d, s Operand) { a.op2(OpOr, 8, d, s) }

// Orl emits a 32-bit or.
func (a *Assembler) Orl(d, s Operand) { a.op2(OpOr, 4, d, s) }

// Xor emits a 64-bit xor.
func (a *Assembler) Xor(d, s Operand) { a.op2(OpXor, 8, d, s) }

// Xorl emits a 32-bit xor.
func (a *Assembler) Xorl(d, s Operand) { a.op2(OpXor, 4, d, s) }

// Cmp emits a 64-bit compare.
func (a *Assembler) Cmp(d, s Operand) { a.op2(OpCmp, 8, d, s) }

// Cmpl emits a 32-bit compare.
func (a *Assembler) Cmpl(d, s Operand) { a.op2(OpCmp, 4, d, s) }

// Cmpb emits an 8-bit compare.
func (a *Assembler) Cmpb(d, s Operand) { a.op2(OpCmp, 1, d, s) }

// Test emits a 64-bit test.
func (a *Assembler) Test(d, s Operand) { a.op2(OpTest, 8, d, s) }

// Testl emits a 32-bit test.
func (a *Assembler) Testl(d, s Operand) { a.op2(OpTest, 4, d, s) }

// Lea emits lea d, [m].
func (a *Assembler) Lea(d Reg, m Operand) { a.op2(OpLea, 8, R(d), m) }

// Movzx emits a zero-extending load/move from a srcW-byte source.
func (a *Assembler) Movzx(d Reg, s Operand, srcW int64) {
	a.Emit(Inst{Op: OpMovzx, OpSize: 8, Dst: R(d), Src: s, Src2: I(srcW)})
}

// Movsx emits a sign-extending load/move from a srcW-byte source.
func (a *Assembler) Movsx(d Reg, s Operand, srcW int64) {
	a.Emit(Inst{Op: OpMovsx, OpSize: 8, Dst: R(d), Src: s, Src2: I(srcW)})
}

// Movsxd emits movsxd d, r/m32.
func (a *Assembler) Movsxd(d Reg, s Operand) { a.op2(OpMovsxd, 8, R(d), s) }

// Push pushes a 64-bit register or memory operand.
func (a *Assembler) Push(o Operand) { a.Emit(Inst{Op: OpPush, OpSize: 8, Dst: o}) }

// Pop pops into a 64-bit register or memory operand.
func (a *Assembler) Pop(o Operand) { a.Emit(Inst{Op: OpPop, OpSize: 8, Dst: o}) }

// Shl emits a 64-bit left shift (count: immediate or RCX for CL).
func (a *Assembler) Shl(d, count Operand) { a.op2(OpShl, 8, d, count) }

// Shr emits a 64-bit logical right shift.
func (a *Assembler) Shr(d, count Operand) { a.op2(OpShr, 8, d, count) }

// Shrl emits a 32-bit logical right shift.
func (a *Assembler) Shrl(d, count Operand) { a.op2(OpShr, 4, d, count) }

// Sar emits a 64-bit arithmetic right shift.
func (a *Assembler) Sar(d, count Operand) { a.op2(OpSar, 8, d, count) }

// Rol emits a 64-bit rotate left.
func (a *Assembler) Rol(d, count Operand) { a.op2(OpRol, 8, d, count) }

// Not emits a 64-bit bitwise not.
func (a *Assembler) Not(d Operand) { a.Emit(Inst{Op: OpNot, OpSize: 8, Dst: d}) }

// Neg emits a 64-bit negate.
func (a *Assembler) Neg(d Operand) { a.Emit(Inst{Op: OpNeg, OpSize: 8, Dst: d}) }

// Inc emits a 64-bit increment.
func (a *Assembler) Inc(d Operand) { a.Emit(Inst{Op: OpInc, OpSize: 8, Dst: d}) }

// Dec emits a 64-bit decrement.
func (a *Assembler) Dec(d Operand) { a.Emit(Inst{Op: OpDec, OpSize: 8, Dst: d}) }

// Imul emits the 2-operand signed multiply d = d * s.
func (a *Assembler) Imul(d Reg, s Operand) {
	a.Emit(Inst{Op: OpImul, OpSize: 8, Dst: R(d), Src: s})
}

// Imul3 emits the 3-operand signed multiply d = s * imm.
func (a *Assembler) Imul3(d Reg, s Operand, imm int64) {
	a.Emit(Inst{Op: OpImul, OpSize: 8, Dst: R(d), Src: s, Src2: I(imm)})
}

// Mul emits the widening unsigned multiply RDX:RAX = RAX * rm.
func (a *Assembler) Mul(rm Operand) { a.Emit(Inst{Op: OpMul, OpSize: 8, Dst: rm}) }

// Div emits the unsigned divide of RDX:RAX by rm.
func (a *Assembler) Div(rm Operand) { a.Emit(Inst{Op: OpDiv, OpSize: 8, Dst: rm}) }

// Idiv emits the signed divide of RDX:RAX by rm.
func (a *Assembler) Idiv(rm Operand) { a.Emit(Inst{Op: OpIdiv, OpSize: 8, Dst: rm}) }

// Cqo sign-extends RAX into RDX:RAX (pairs with Idiv).
func (a *Assembler) Cqo() { a.Emit(Inst{Op: OpCqo, OpSize: 8}) }

// branchRel emits a rel32 branch to label l and records a fixup.
func (a *Assembler) branchRel(inst Inst, l Label) {
	a.Emit(inst)
	// The displacement is always the final 4 bytes of the encoding.
	a.fixups = append(a.fixups, fixup{kind: fixRel32, off: len(a.buf) - 4, label: l})
}

// Jmp emits an unconditional jump to l.
func (a *Assembler) Jmp(l Label) {
	a.branchRel(Inst{Op: OpJmp, OpSize: 8, Dst: I(0)}, l)
}

// Jcc emits a conditional jump to l.
func (a *Assembler) Jcc(c Cond, l Label) {
	a.branchRel(Inst{Op: OpJcc, Cond: c, OpSize: 8, Dst: I(0)}, l)
}

// Call emits a direct call to l.
func (a *Assembler) Call(l Label) {
	a.branchRel(Inst{Op: OpCall, OpSize: 8, Dst: I(0)}, l)
}

// JmpReg emits an indirect jump through a register.
func (a *Assembler) JmpReg(r Reg) { a.Emit(Inst{Op: OpJmp, OpSize: 8, Dst: R(r)}) }

// CallReg emits an indirect call through a register.
func (a *Assembler) CallReg(r Reg) { a.Emit(Inst{Op: OpCall, OpSize: 8, Dst: R(r)}) }

// Ret emits a near return.
func (a *Assembler) Ret() { a.Emit(Inst{Op: OpRet, OpSize: 8}) }

// Setcc emits setCC on an 8-bit destination.
func (a *Assembler) Setcc(c Cond, d Operand) {
	a.Emit(Inst{Op: OpSetcc, Cond: c, OpSize: 1, Dst: d})
}

// Cmovcc emits a 64-bit conditional move.
func (a *Assembler) Cmovcc(c Cond, d Reg, s Operand) {
	a.Emit(Inst{Op: OpCmovcc, Cond: c, OpSize: 8, Dst: R(d), Src: s})
}

// Xchg emits an exchange (implicitly locked when d is memory).
func (a *Assembler) Xchg(d, s Operand) { a.op2(OpXchg, 8, d, s) }

// LockCmpxchg emits lock cmpxchg d, s (RAX is the implicit comparand).
func (a *Assembler) LockCmpxchg(d, s Operand) {
	a.Emit(Inst{Op: OpCmpxchg, OpSize: 8, Lock: true, Dst: d, Src: s})
}

// LockXadd emits lock xadd d, s.
func (a *Assembler) LockXadd(d, s Operand) {
	a.Emit(Inst{Op: OpXadd, OpSize: 8, Lock: true, Dst: d, Src: s})
}

// LockAdd emits lock add d, s (d must be memory).
func (a *Assembler) LockAdd(d, s Operand) {
	a.Emit(Inst{Op: OpAdd, OpSize: 8, Lock: true, Dst: d, Src: s})
}

// LockInc emits lock inc on a memory operand.
func (a *Assembler) LockInc(d Operand) {
	a.Emit(Inst{Op: OpInc, OpSize: 8, Lock: true, Dst: d})
}

// LockDec emits lock dec on a memory operand.
func (a *Assembler) LockDec(d Operand) {
	a.Emit(Inst{Op: OpDec, OpSize: 8, Lock: true, Dst: d})
}

// Mfence emits a full memory fence.
func (a *Assembler) Mfence() { a.Emit(Inst{Op: OpMfence, OpSize: 8}) }

// Pause emits the spin-loop hint.
func (a *Assembler) Pause() { a.Emit(Inst{Op: OpPause, OpSize: 8}) }

// RepMovs emits rep movs of the given element size (1 or 8).
func (a *Assembler) RepMovs(size uint8) {
	a.Emit(Inst{Op: OpMovs, OpSize: size, Rep: true})
}

// RepStos emits rep stos of the given element size.
func (a *Assembler) RepStos(size uint8) {
	a.Emit(Inst{Op: OpStos, OpSize: size, Rep: true})
}

// Nop emits a one-byte nop.
func (a *Assembler) Nop() { a.Emit(Inst{Op: OpNop, OpSize: 4}) }

// Hlt emits hlt (blocks the VCPU until an interrupt).
func (a *Assembler) Hlt() { a.Emit(Inst{Op: OpHlt, OpSize: 8}) }

// Syscall emits syscall.
func (a *Assembler) Syscall() { a.Emit(Inst{Op: OpSyscall, OpSize: 8}) }

// Sysret emits sysretq.
func (a *Assembler) Sysret() { a.Emit(Inst{Op: OpSysret, OpSize: 8}) }

// Iretq emits iretq.
func (a *Assembler) Iretq() { a.Emit(Inst{Op: OpIretq, OpSize: 8}) }

// Rdtsc emits rdtsc.
func (a *Assembler) Rdtsc() { a.Emit(Inst{Op: OpRdtsc, OpSize: 8}) }

// Cpuid emits cpuid.
func (a *Assembler) Cpuid() { a.Emit(Inst{Op: OpCpuid, OpSize: 8}) }

// Ptlcall emits the PTLsim breakout opcode 0F 37.
func (a *Assembler) Ptlcall() { a.Emit(Inst{Op: OpPtlcall, OpSize: 8}) }

// Hypercall emits the paravirt hypercall (VMCALL encoding).
func (a *Assembler) Hypercall() { a.Emit(Inst{Op: OpHypercall, OpSize: 8}) }

// MovToCR emits mov crN, r (privileged).
func (a *Assembler) MovToCR(cr int64, r Reg) {
	a.Emit(Inst{Op: OpMovToCR, OpSize: 8, Dst: I(cr), Src: R(r)})
}

// MovFromCR emits mov r, crN (privileged).
func (a *Assembler) MovFromCR(r Reg, cr int64) {
	a.Emit(Inst{Op: OpMovFromCR, OpSize: 8, Dst: R(r), Src: I(cr)})
}

// Invlpg emits invlpg [m] (privileged).
func (a *Assembler) Invlpg(m Operand) { a.Emit(Inst{Op: OpInvlpg, OpSize: 8, Dst: m}) }

// LeaLabel loads the absolute address of l into d using a RIP-relative
// lea, the position-independent idiom compilers emit.
func (a *Assembler) LeaLabel(d Reg, l Label) {
	a.Emit(Inst{Op: OpLea, OpSize: 8, Dst: R(d),
		Src: MemOp(MemRef{Base: RIP, Index: RegNone, Scale: 1, Disp: 0})})
	a.fixups = append(a.fixups, fixup{kind: fixRel32, off: len(a.buf) - 4, label: l})
}

// Scalar FP helpers.

// Movsd emits movsd xmm, xmm/m64.
func (a *Assembler) Movsd(d Reg, s Operand) { a.op2(OpMovsdLoad, 8, R(d), s) }

// MovsdStore emits movsd m64/xmm, xmm.
func (a *Assembler) MovsdStore(d Operand, s Reg) { a.op2(OpMovsdStore, 8, d, R(s)) }

// Addsd emits addsd.
func (a *Assembler) Addsd(d Reg, s Operand) { a.op2(OpAddsd, 8, R(d), s) }

// Subsd emits subsd.
func (a *Assembler) Subsd(d Reg, s Operand) { a.op2(OpSubsd, 8, R(d), s) }

// Mulsd emits mulsd.
func (a *Assembler) Mulsd(d Reg, s Operand) { a.op2(OpMulsd, 8, R(d), s) }

// Divsd emits divsd.
func (a *Assembler) Divsd(d Reg, s Operand) { a.op2(OpDivsd, 8, R(d), s) }

// Cvtsi2sd emits cvtsi2sd xmm, r/m64.
func (a *Assembler) Cvtsi2sd(d Reg, s Operand) { a.op2(OpCvtsi2sd, 8, R(d), s) }

// Cvttsd2si emits cvttsd2si r64, xmm/m64.
func (a *Assembler) Cvttsd2si(d Reg, s Operand) { a.op2(OpCvttsd2si, 8, R(d), s) }

// Ucomisd emits ucomisd (sets ZF/PF/CF like hardware).
func (a *Assembler) Ucomisd(d Reg, s Operand) { a.op2(OpUcomisd, 8, R(d), s) }
