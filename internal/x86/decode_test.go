package x86

import (
	"bytes"
	"math/rand"
	"testing"
)

// golden decode vectors, hand-checked against real assembler output.
func TestDecodeGolden(t *testing.T) {
	cases := []struct {
		name  string
		bytes []byte
		want  string
	}{
		{"push rbp", []byte{0x55}, "push rbp"},
		{"mov rbp, rsp", []byte{0x48, 0x89, 0xE5}, "mov rbp, rsp"},
		{"sub rsp, 16", []byte{0x48, 0x83, 0xEC, 0x10}, "sub rsp, 0x10"},
		{"mov eax, [rbp-4]", []byte{0x8B, 0x45, 0xFC}, "mov32 rax, [rbp-0x4]"},
		{"lea rax, [rdx+rcx*4]", []byte{0x48, 0x8D, 0x04, 0x8A}, "lea rax, [rdx+rcx*4]"},
		{"call rel32", []byte{0xE8, 0x00, 0x00, 0x00, 0x00}, "call 0x0"},
		{"lock xadd [rdi], rax", []byte{0xF0, 0x48, 0x0F, 0xC1, 0x07}, "lock xadd [rdi], rax"},
		{"rep movsq", []byte{0xF3, 0x48, 0xA5}, "rep movs"},
		{"rep movsb", []byte{0xF3, 0xA4}, "rep movs8 "},
		{"syscall", []byte{0x0F, 0x05}, "syscall"},
		{"ptlcall", []byte{0x0F, 0x37}, "ptlcall"},
		{"hypercall", []byte{0x0F, 0x01, 0xC1}, "hypercall"},
		{"addsd xmm0, xmm1", []byte{0xF2, 0x0F, 0x58, 0xC1}, "addsd xmm0, xmm1"},
		{"imul rax, rbx", []byte{0x48, 0x0F, 0xAF, 0xC3}, "imul rax, rbx"},
		{"idiv rcx", []byte{0x48, 0xF7, 0xF9}, "idiv rcx"},
		{"jmp -2", []byte{0xEB, 0xFE}, "jmp -0x2"},
		{"je +5", []byte{0x74, 0x05}, "je 0x5"},
		{"ret", []byte{0xC3}, "ret"},
		{"hlt", []byte{0xF4}, "hlt"},
		{"iretq", []byte{0x48, 0xCF}, "iretq"},
		{"rdtsc", []byte{0x0F, 0x31}, "rdtsc"},
		{"mov cr3, rax", []byte{0x0F, 0x22, 0xD8}, "mov_to_cr 0x3, rax"},
		{"mov r15, imm64", append([]byte{0x49, 0xBF}, []byte{1, 0, 0, 0, 0, 0, 0, 0x80}...), "mov r15, -0x7fffffffffffffff"},
		{"movzx eax, byte [rsi]", []byte{0x0F, 0xB6, 0x06}, "movzx32 rax, [rsi], 0x1"},
		{"setne al", []byte{0x0F, 0x95, 0xC0}, "setne8 rax"},
		{"cmovl rax, rbx", []byte{0x48, 0x0F, 0x4C, 0xC3}, "cmovl rax, rbx"},
		{"pause", []byte{0xF3, 0x90}, "pause32 "},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inst, err := Decode(tc.bytes)
			if err != nil {
				t.Fatalf("decode %x: %v", tc.bytes, err)
			}
			if int(inst.Len) != len(tc.bytes) {
				t.Fatalf("len = %d, want %d", inst.Len, len(tc.bytes))
			}
		})
	}
}

func TestDecodeLengths(t *testing.T) {
	// mov rax, [rbp-4] vs [rbp-1000]: disp8 vs disp32.
	short := []byte{0x48, 0x8B, 0x45, 0xFC}
	long := []byte{0x48, 0x8B, 0x85, 0x18, 0xFC, 0xFF, 0xFF}
	i1, err := Decode(short)
	if err != nil || i1.Len != 4 {
		t.Fatalf("disp8 decode: %v len=%d", err, i1.Len)
	}
	i2, err := Decode(long)
	if err != nil || i2.Len != 7 {
		t.Fatalf("disp32 decode: %v len=%d", err, i2.Len)
	}
	if i1.Src.Mem.Disp != -4 || i2.Src.Mem.Disp != -1000 {
		t.Fatalf("disps: %d %d", i1.Src.Mem.Disp, i2.Src.Mem.Disp)
	}
}

func TestDecodeRIPRelative(t *testing.T) {
	// lea rax, [rip+0x1234]
	code := []byte{0x48, 0x8D, 0x05, 0x34, 0x12, 0x00, 0x00}
	inst, err := Decode(code)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Src.Mem.Base != RIP || inst.Src.Mem.Disp != 0x1234 {
		t.Fatalf("got %v", inst.Src.Mem)
	}
}

func TestDecodeTruncated(t *testing.T) {
	full := []byte{0x48, 0x8B, 0x85, 0x18, 0xFC, 0xFF, 0xFF}
	for n := 1; n < len(full); n++ {
		if _, err := Decode(full[:n]); err != ErrTruncated {
			t.Fatalf("prefix len %d: err = %v, want ErrTruncated", n, err)
		}
	}
}

func TestDecodeUndefined(t *testing.T) {
	for _, b := range [][]byte{{0x0F, 0xFF}, {0xD8, 0x00}} {
		if _, err := Decode(b); err == nil {
			t.Fatalf("decode %x should fail", b)
		}
	}
}

// normalize cleans up representational differences that don't change
// semantics before comparing round-tripped instructions.
func normalize(i Inst) Inst {
	i.Len = 0
	for _, op := range []*Operand{&i.Dst, &i.Src, &i.Src2} {
		if op.Kind == KindMem && op.Mem.Index == RegNone {
			op.Mem.Scale = 1
		}
	}
	return i
}

func randGPR(r *rand.Rand) Reg { return Reg(r.Intn(NumGPR)) }

func randMem(r *rand.Rand) Operand {
	m := MemRef{Base: RegNone, Index: RegNone, Scale: 1}
	switch r.Intn(4) {
	case 0: // base only
		m.Base = randGPR(r)
	case 1: // base + disp
		m.Base = randGPR(r)
		m.Disp = int32(r.Int63()) // full range
	case 2: // base + index*scale + disp8
		m.Base = randGPR(r)
		for {
			m.Index = randGPR(r)
			if m.Index != RSP {
				break
			}
		}
		m.Scale = []uint8{1, 2, 4, 8}[r.Intn(4)]
		m.Disp = int32(int8(r.Int()))
	case 3: // rip-relative
		m.Base = RIP
		m.Disp = int32(r.Int63())
	}
	return MemOp(m)
}

// randInst generates a random instruction from the supported space.
func randInst(r *rand.Rand) Inst {
	sizes := []uint8{1, 2, 4, 8}
	size := sizes[r.Intn(4)]
	regOrMem := func() Operand {
		if r.Intn(2) == 0 {
			return RegOp(randGPR(r))
		}
		return randMem(r)
	}
	switch r.Intn(16) {
	case 0: // ALU reg, r/m
		ops := aluOps()
		return Inst{Op: ops[r.Intn(8)], OpSize: size, Dst: RegOp(randGPR(r)), Src: regOrMem()}
	case 1: // ALU r/m, reg
		ops := aluOps()
		return Inst{Op: ops[r.Intn(8)], OpSize: size, Dst: regOrMem(), Src: RegOp(randGPR(r))}
	case 2: // ALU r/m, imm
		ops := aluOps()
		imm := int64(int32(r.Int63()))
		if size == 1 {
			imm = int64(int8(imm))
		} else if size == 2 {
			imm = int64(int16(imm))
		}
		return Inst{Op: ops[r.Intn(8)], OpSize: size, Dst: regOrMem(), Src: ImmOp(imm)}
	case 3: // MOV forms
		switch r.Intn(3) {
		case 0:
			return Inst{Op: OpMov, OpSize: size, Dst: RegOp(randGPR(r)), Src: regOrMem()}
		case 1:
			return Inst{Op: OpMov, OpSize: size, Dst: regOrMem(), Src: RegOp(randGPR(r))}
		default:
			imm := int64(int32(r.Int63()))
			if size == 1 {
				imm = int64(int8(imm))
			} else if size == 2 {
				imm = int64(int16(imm))
			} else if size == 8 && r.Intn(2) == 0 {
				imm = r.Int63() // may need movabs
				return Inst{Op: OpMov, OpSize: 8, Dst: RegOp(randGPR(r)), Src: ImmOp(imm)}
			}
			return Inst{Op: OpMov, OpSize: size, Dst: regOrMem(), Src: ImmOp(imm)}
		}
	case 4: // movzx/movsx
		op := OpMovzx
		if r.Intn(2) == 0 {
			op = OpMovsx
		}
		srcW := int64(1 + r.Intn(2))
		dsize := uint8(4)
		if r.Intn(2) == 0 {
			dsize = 8
		}
		return Inst{Op: op, OpSize: dsize, Dst: RegOp(randGPR(r)), Src: regOrMem(), Src2: ImmOp(srcW)}
	case 5: // lea
		return Inst{Op: OpLea, OpSize: 8, Dst: RegOp(randGPR(r)), Src: randMem(r)}
	case 6: // push/pop reg
		op := OpPush
		if r.Intn(2) == 0 {
			op = OpPop
		}
		return Inst{Op: op, OpSize: 8, Dst: RegOp(randGPR(r))}
	case 7: // shifts
		ops := []Op{OpShl, OpShr, OpSar, OpRol, OpRor}
		src := ImmOp(int64(r.Intn(63) + 1))
		if r.Intn(2) == 0 {
			src = RegOp(RCX)
		}
		return Inst{Op: ops[r.Intn(5)], OpSize: size, Dst: regOrMem(), Src: src}
	case 8: // unary group
		ops := []Op{OpNot, OpNeg, OpInc, OpDec, OpMul, OpDiv, OpIdiv}
		return Inst{Op: ops[r.Intn(7)], OpSize: size, Dst: regOrMem()}
	case 9: // imul forms
		switch r.Intn(3) {
		case 0:
			return Inst{Op: OpImul, OpSize: size, Dst: regOrMem()}
		case 1:
			sz := size
			if sz < 2 {
				sz = 8
			}
			return Inst{Op: OpImul, OpSize: sz, Dst: RegOp(randGPR(r)), Src: regOrMem()}
		default:
			sz := size
			if sz < 2 {
				sz = 8
			}
			imm := int64(int32(r.Int63()))
			if sz == 2 {
				imm = int64(int16(imm))
			}
			return Inst{Op: OpImul, OpSize: sz, Dst: RegOp(randGPR(r)), Src: regOrMem(), Src2: ImmOp(imm)}
		}
	case 10: // test
		if r.Intn(2) == 0 {
			return Inst{Op: OpTest, OpSize: size, Dst: regOrMem(), Src: RegOp(randGPR(r))}
		}
		imm := int64(int32(r.Int63()))
		if size == 1 {
			imm = int64(int8(imm))
		} else if size == 2 {
			imm = int64(int16(imm))
		}
		return Inst{Op: OpTest, OpSize: size, Dst: regOrMem(), Src: ImmOp(imm)}
	case 11: // atomics
		lock := r.Intn(2) == 0
		dst := randMem(r)
		switch r.Intn(3) {
		case 0:
			return Inst{Op: OpXchg, OpSize: size, Lock: lock, Dst: dst, Src: RegOp(randGPR(r))}
		case 1:
			return Inst{Op: OpCmpxchg, OpSize: size, Lock: lock, Dst: dst, Src: RegOp(randGPR(r))}
		default:
			return Inst{Op: OpXadd, OpSize: size, Lock: lock, Dst: dst, Src: RegOp(randGPR(r))}
		}
	case 12: // setcc / cmovcc
		c := Cond(r.Intn(16))
		if r.Intn(2) == 0 {
			return Inst{Op: OpSetcc, Cond: c, OpSize: 1, Dst: regOrMem()}
		}
		sz := size
		if sz < 2 {
			sz = 8
		}
		return Inst{Op: OpCmovcc, Cond: c, OpSize: sz, Dst: RegOp(randGPR(r)), Src: regOrMem()}
	case 13: // control flow
		switch r.Intn(4) {
		case 0:
			return Inst{Op: OpJmp, OpSize: 8, Dst: ImmOp(int64(int32(r.Int63())))}
		case 1:
			return Inst{Op: OpJcc, Cond: Cond(r.Intn(16)), OpSize: 8, Dst: ImmOp(int64(int32(r.Int63())))}
		case 2:
			return Inst{Op: OpCall, OpSize: 8, Dst: ImmOp(int64(int32(r.Int63())))}
		default:
			return Inst{Op: OpJmp, OpSize: 8, Dst: RegOp(randGPR(r))}
		}
	case 14: // string ops
		ops := []Op{OpMovs, OpStos, OpLods}
		sz := uint8(1)
		if r.Intn(2) == 0 {
			sz = 8
		}
		return Inst{Op: ops[r.Intn(3)], OpSize: sz, Rep: r.Intn(2) == 0}
	default: // system + SSE
		switch r.Intn(8) {
		case 0:
			return Inst{Op: OpSyscall, OpSize: 8}
		case 1:
			return Inst{Op: OpRdtsc, OpSize: 8}
		case 2:
			return Inst{Op: OpPtlcall, OpSize: 8}
		case 3:
			return Inst{Op: OpHypercall, OpSize: 8}
		case 4:
			x := XMM0 + Reg(r.Intn(NumXMM))
			y := XMM0 + Reg(r.Intn(NumXMM))
			ops := []Op{OpAddsd, OpSubsd, OpMulsd, OpDivsd, OpUcomisd}
			return Inst{Op: ops[r.Intn(5)], OpSize: 8, Dst: RegOp(x), Src: RegOp(y)}
		case 5:
			x := XMM0 + Reg(r.Intn(NumXMM))
			if r.Intn(2) == 0 {
				return Inst{Op: OpMovsdLoad, OpSize: 8, Dst: RegOp(x), Src: randMem(r)}
			}
			return Inst{Op: OpMovsdStore, OpSize: 8, Dst: randMem(r), Src: RegOp(x)}
		case 6:
			x := XMM0 + Reg(r.Intn(NumXMM))
			if r.Intn(2) == 0 {
				return Inst{Op: OpCvtsi2sd, OpSize: 8, Dst: RegOp(x), Src: RegOp(randGPR(r))}
			}
			return Inst{Op: OpCvttsd2si, OpSize: 8, Dst: RegOp(randGPR(r)), Src: RegOp(x)}
		default:
			return Inst{Op: OpHlt, OpSize: 8}
		}
	}
}

// The central property: every instruction the assembler can produce
// decodes back to an equivalent instruction, and the decoder consumes
// exactly the bytes the encoder produced.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		want := randInst(r)
		code, err := Encode(&want)
		if err != nil {
			t.Fatalf("#%d encode %s: %v", i, &want, err)
		}
		got, err := Decode(code)
		if err != nil {
			t.Fatalf("#%d decode %x (%s): %v", i, code, &want, err)
		}
		if int(got.Len) != len(code) {
			t.Fatalf("#%d %s: decoded len %d, encoded %d bytes (%x)", i, &want, got.Len, len(code), code)
		}
		g, w := normalize(got), normalize(want)
		if g != w {
			t.Fatalf("#%d round trip mismatch:\n  want %#v (%s)\n  got  %#v (%s)\n  code %x", i, w, &want, g, &got, code)
		}
	}
}

// Decoding must never loop or panic on arbitrary bytes; it either
// yields an instruction with positive length or a decode error.
func TestDecodeFuzzSafety(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	buf := make([]byte, 18)
	for i := 0; i < 50000; i++ {
		r.Read(buf)
		inst, err := Decode(buf)
		if err == nil && (inst.Len == 0 || int(inst.Len) > MaxInstLen) {
			t.Fatalf("decode %x: bad length %d", buf, inst.Len)
		}
	}
}

func TestAssemblerLabels(t *testing.T) {
	a := NewAssembler(0x1000)
	top := a.NewLabel()
	end := a.NewLabel()
	a.Mov(R(RAX), I(0))
	a.Bind(top)
	a.Cmp(R(RAX), I(10))
	a.Jcc(CondGE, end)
	a.Inc(R(RAX))
	a.Jmp(top)
	a.Bind(end)
	a.Ret()
	code, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	// Walk the code and verify every branch lands on an instruction
	// boundary inside the buffer.
	bounds := map[int64]bool{}
	pos := int64(0)
	var insts []Inst
	for pos < int64(len(code)) {
		bounds[pos] = true
		inst, err := Decode(code[pos:])
		if err != nil {
			t.Fatalf("decode at +%d: %v", pos, err)
		}
		insts = append(insts, inst)
		pos += int64(inst.Len)
	}
	pos = 0
	for _, inst := range insts {
		next := pos + int64(inst.Len)
		if (inst.Op == OpJmp || inst.Op == OpJcc) && inst.Dst.Kind == KindImm {
			target := next + inst.Dst.Imm
			if !bounds[target] && target != int64(len(code)) {
				t.Fatalf("branch at +%d targets +%d: not an instruction boundary", pos, target)
			}
		}
		pos = next
	}
}

func TestAssemblerUnboundLabel(t *testing.T) {
	a := NewAssembler(0)
	l := a.NewLabel()
	a.Jmp(l)
	if _, err := a.Bytes(); err == nil {
		t.Fatal("Bytes should fail with unbound label")
	}
}

func TestAssemblerDoubleBind(t *testing.T) {
	a := NewAssembler(0)
	l := a.NewLabel()
	a.Bind(l)
	a.Bind(l)
	if _, err := a.Bytes(); err == nil {
		t.Fatal("Bytes should fail after double bind")
	}
}

func TestQuadLabel(t *testing.T) {
	a := NewAssembler(0x4000)
	entry := a.NewLabel()
	a.QuadLabel(entry)
	a.Bind(entry)
	a.Ret()
	code, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	got := uint64(code[0]) | uint64(code[1])<<8 | uint64(code[2])<<16 | uint64(code[3])<<24
	if got != 0x4008 {
		t.Fatalf("quad label = %#x, want 0x4008", got)
	}
}

func TestLeaLabel(t *testing.T) {
	a := NewAssembler(0x1000)
	target := a.NewLabel()
	a.LeaLabel(RAX, target)
	a.Nop()
	a.Bind(target)
	a.Ret()
	code, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Decode(code)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Src.Mem.Base != RIP {
		t.Fatal("LeaLabel should be rip-relative")
	}
	// target address = end of lea + disp
	got := 0x1000 + uint64(inst.Len) + uint64(int64(inst.Src.Mem.Disp))
	want := a.Addr(target)
	if got != want {
		t.Fatalf("lea resolves to %#x, want %#x", got, want)
	}
}

func TestDSLStructure(t *testing.T) {
	a := NewAssembler(0)
	a.Mov(R(RAX), I(0))
	a.Mov(R(RCX), I(5))
	a.While(func() Cond {
		a.Cmp(R(RCX), I(0))
		return CondNE
	}, func() {
		a.Add(R(RAX), R(RCX))
		a.Dec(R(RCX))
	})
	a.Ret()
	code, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	// Should decode cleanly end to end.
	pos := 0
	n := 0
	for pos < len(code) {
		inst, err := Decode(code[pos:])
		if err != nil {
			t.Fatalf("decode at %d: %v", pos, err)
		}
		pos += int(inst.Len)
		n++
	}
	if n < 7 {
		t.Fatalf("expected at least 7 instructions, got %d", n)
	}
}

func TestCondEval(t *testing.T) {
	cases := []struct {
		c     Cond
		flags uint64
		want  bool
	}{
		{CondE, FlagZF, true},
		{CondE, 0, false},
		{CondNE, FlagZF, false},
		{CondB, FlagCF, true},
		{CondAE, FlagCF, false},
		{CondBE, FlagZF, true},
		{CondA, 0, true},
		{CondA, FlagCF, false},
		{CondL, FlagSF, true},
		{CondL, FlagSF | FlagOF, false},
		{CondGE, FlagSF | FlagOF, true},
		{CondLE, FlagZF, true},
		{CondG, 0, true},
		{CondG, FlagZF, false},
		{CondS, FlagSF, true},
		{CondO, FlagOF, true},
		{CondP, FlagPF, true},
	}
	for _, tc := range cases {
		if got := tc.c.Eval(tc.flags); got != tc.want {
			t.Errorf("%s.Eval(%#x) = %v, want %v", tc.c, tc.flags, got, tc.want)
		}
	}
}

func TestCondNegate(t *testing.T) {
	for c := Cond(0); c < 16; c++ {
		for _, flags := range []uint64{0, FlagZF, FlagCF, FlagSF, FlagOF, FlagZF | FlagCF, FlagSF | FlagOF, FlagPF} {
			if c.Eval(flags) == c.Negate().Eval(flags) {
				t.Fatalf("cond %s and negation agree on flags %#x", c, flags)
			}
		}
	}
}

func TestInstString(t *testing.T) {
	inst := Inst{Op: OpAdd, OpSize: 8, Lock: true, Dst: M(RDI, 8), Src: R(RAX)}
	if got := inst.String(); got != "lock add [rdi+0x8], rax" {
		t.Fatalf("String = %q", got)
	}
}

func TestEncodeAppendStability(t *testing.T) {
	// Encoding the same instruction twice must give identical bytes.
	inst := Inst{Op: OpMov, OpSize: 8, Dst: R(RAX), Src: M(RBX, 100)}
	a, err1 := Encode(&inst)
	b, err2 := Encode(&inst)
	if err1 != nil || err2 != nil || !bytes.Equal(a, b) {
		t.Fatalf("unstable encode: %x vs %x (%v %v)", a, b, err1, err2)
	}
}
