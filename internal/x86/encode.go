package x86

import (
	"encoding/binary"
	"fmt"
)

// Encode produces the x86-64 machine-code bytes for inst. It is the
// inverse of Decode: for every instruction the assembler can express,
// Decode(Encode(inst)) yields an equivalent Inst (the round-trip
// property tested in decode_test.go).
//
// Relative branches carry their displacement (from the end of the
// instruction) in Dst.Imm; the assembler's label fixup layer rewrites
// the displacement bytes after layout.
//
// Deviation from real hardware: 8-bit register operands always refer to
// the low byte of the 64-bit register (SPL/BPL/SIL/DIL rather than
// AH/CH/DH/BH); a REX prefix is emitted whenever an 8-bit operand in
// encodings 4-7 requires it, exactly as modern compilers do.
func Encode(inst *Inst) ([]byte, error) {
	e := encoder{}
	if err := e.encode(inst); err != nil {
		return nil, err
	}
	return e.buf, nil
}

type encoder struct {
	buf []byte
}

func (e *encoder) byte(b byte)     { e.buf = append(e.buf, b) }
func (e *encoder) bytes(b ...byte) { e.buf = append(e.buf, b...) }

func (e *encoder) u16(v uint16) {
	e.buf = binary.LittleEndian.AppendUint16(e.buf, v)
}
func (e *encoder) u32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}
func (e *encoder) u64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// imm writes an immediate of the given width.
func (e *encoder) imm(v int64, width int) {
	switch width {
	case 1:
		e.byte(byte(v))
	case 2:
		e.u16(uint16(v))
	case 4:
		e.u32(uint32(v))
	case 8:
		e.u64(uint64(v))
	}
}

// rexSpec accumulates the REX prefix requirements of an encoding.
type rexSpec struct {
	w, r, x, b bool
	force      bool // force 0x40 even with no bits (8-bit SPL..DIL)
}

func (rx rexSpec) emitTo(e *encoder) {
	if rx.w || rx.r || rx.x || rx.b || rx.force {
		v := byte(0x40)
		if rx.w {
			v |= 8
		}
		if rx.r {
			v |= 4
		}
		if rx.x {
			v |= 2
		}
		if rx.b {
			v |= 1
		}
		e.byte(v)
	}
}

// need8 reports whether using r as an 8-bit operand requires a REX
// prefix (encodings 4-7 would otherwise mean AH/CH/DH/BH).
func need8(r Reg) bool { return r.IsGPR() && r.Enc() >= 4 && r.Enc() <= 7 }

// modrmArgs captures everything needed to emit ModRM (+SIB +disp).
type modrmArgs struct {
	reg  uint8 // ModRM.reg field value (register encoding or opcode ext)
	isRM bool  // true: register-direct rm; false: memory
	rm   uint8 // register encoding when isRM
	mem  MemRef
}

// prep computes the REX bits contributed by the ModRM operands.
func (m *modrmArgs) prep(rx *rexSpec) error {
	if m.reg >= 8 {
		rx.r = true
	}
	if m.isRM {
		if m.rm >= 8 {
			rx.b = true
		}
		return nil
	}
	mem := m.mem
	if mem.Base == RIP {
		if mem.Index != RegNone {
			return fmt.Errorf("x86: rip-relative with index register")
		}
		return nil
	}
	if mem.Base != RegNone && mem.Base.Enc() >= 8 {
		rx.b = true
	}
	if mem.Index != RegNone {
		if mem.Index == RSP {
			return fmt.Errorf("x86: rsp cannot be an index register")
		}
		if mem.Index.Enc() >= 8 {
			rx.x = true
		}
	}
	return nil
}

// emit writes the ModRM byte plus any SIB and displacement.
func (m *modrmArgs) emit(e *encoder) {
	regBits := (m.reg & 7) << 3
	if m.isRM {
		e.byte(0xC0 | regBits | m.rm&7)
		return
	}
	mem := m.mem
	switch {
	case mem.Base == RIP:
		e.byte(0x00 | regBits | 5)
		e.u32(uint32(mem.Disp))
	case mem.Base == RegNone && mem.Index == RegNone:
		// Absolute: ModRM rm=100 + SIB base=101 index=100, mod=00, disp32.
		e.byte(0x00 | regBits | 4)
		e.byte(0x25)
		e.u32(uint32(mem.Disp))
	case mem.Base == RegNone:
		// Index only: SIB with base=101 (means disp32 with mod=00).
		e.byte(0x00 | regBits | 4)
		e.byte(sib(mem.Scale, mem.Index.Enc()&7, 5))
		e.u32(uint32(mem.Disp))
	default:
		base := mem.Base.Enc()
		needSIB := mem.Index != RegNone || base&7 == 4 // RSP/R12 base
		// mod=00 with base RBP/R13 means no-base; force disp8.
		mod := byte(0)
		dispW := 0
		switch {
		case mem.Disp == 0 && base&7 != 5:
			mod, dispW = 0, 0
		case mem.Disp >= -128 && mem.Disp <= 127:
			mod, dispW = 1, 1
		default:
			mod, dispW = 2, 4
		}
		if needSIB {
			e.byte(mod<<6 | regBits | 4)
			idx := byte(4) // none
			scale := uint8(1)
			if mem.Index != RegNone {
				idx = mem.Index.Enc() & 7
				scale = mem.Scale
			}
			e.byte(sib(scale, idx, base&7))
		} else {
			e.byte(mod<<6 | regBits | base&7)
		}
		if dispW == 1 {
			e.byte(byte(mem.Disp))
		} else if dispW == 4 {
			e.u32(uint32(mem.Disp))
		}
	}
}

func sib(scale uint8, index, base byte) byte {
	var ss byte
	switch scale {
	case 1, 0:
		ss = 0
	case 2:
		ss = 1
	case 4:
		ss = 2
	case 8:
		ss = 3
	}
	return ss<<6 | index<<3 | base
}

// aluIndex maps a group-1 ALU op to its 3-bit opcode index.
func aluIndex(op Op) (uint8, bool) {
	switch op {
	case OpAdd:
		return 0, true
	case OpOr:
		return 1, true
	case OpAdc:
		return 2, true
	case OpSbb:
		return 3, true
	case OpAnd:
		return 4, true
	case OpSub:
		return 5, true
	case OpXor:
		return 6, true
	case OpCmp:
		return 7, true
	}
	return 0, false
}

// shiftIndex maps a group-2 shift/rotate op to its ModRM.reg extension.
func shiftIndex(op Op) (uint8, bool) {
	switch op {
	case OpRol:
		return 0, true
	case OpRor:
		return 1, true
	case OpShl:
		return 4, true
	case OpShr:
		return 5, true
	case OpSar:
		return 7, true
	}
	return 0, false
}

// encode dispatches on the operation and operand shapes.
func (e *encoder) encode(inst *Inst) error {
	size := inst.OpSize
	if size == 0 {
		size = 8
	}
	if inst.Lock {
		e.byte(0xF0)
	}
	if inst.Rep {
		e.byte(0xF3)
	}
	if size == 2 {
		e.byte(0x66)
	}

	switch inst.Op {
	case OpAdd, OpOr, OpAdc, OpSbb, OpAnd, OpSub, OpXor, OpCmp:
		idx, _ := aluIndex(inst.Op)
		return e.encodeALU(inst, idx, size)
	case OpTest:
		return e.encodeTest(inst, size)
	case OpMov:
		return e.encodeMov(inst, size)
	case OpMovzx, OpMovsx:
		return e.encodeMovExt(inst, size)
	case OpMovsxd:
		return e.encodeRRM(inst, size, 0x63)
	case OpLea:
		if inst.Dst.Kind != KindReg || inst.Src.Kind != KindMem {
			return fmt.Errorf("x86: lea needs reg, mem")
		}
		return e.encodeRRM(inst, size, 0x8D)
	case OpXchg:
		return e.encodeMRReg(inst, size, 0x86, 0x87)
	case OpPush, OpPop:
		return e.encodePushPop(inst)
	case OpShl, OpShr, OpSar, OpRol, OpRor:
		return e.encodeShift(inst, size)
	case OpNot, OpNeg, OpMul, OpImul, OpDiv, OpIdiv:
		return e.encodeGroup3(inst, size)
	case OpInc, OpDec:
		return e.encodeIncDec(inst, size)
	case OpJmp:
		return e.encodeJmp(inst)
	case OpJcc:
		e.bytes(0x0F, 0x80|byte(inst.Cond))
		e.u32(uint32(inst.Dst.Imm))
		return nil
	case OpCall:
		return e.encodeCall(inst)
	case OpRet:
		e.byte(0xC3)
		return nil
	case OpSetcc:
		return e.encodeSetcc(inst)
	case OpCmovcc:
		if inst.Dst.Kind != KindReg {
			return fmt.Errorf("x86: cmov needs reg dst")
		}
		return e.encodeRRMOp2(inst, size, 0x40|byte(inst.Cond))
	case OpCmpxchg:
		return e.encodeMRReg2(inst, size, 0xB0, 0xB1)
	case OpXadd:
		return e.encodeMRReg2(inst, size, 0xC0, 0xC1)
	case OpMfence:
		e.bytes(0x0F, 0xAE, 0xF0)
		return nil
	case OpPause:
		// REP prefix already emitted above when inst.Rep; PAUSE is F3 90.
		if !inst.Rep {
			e.byte(0xF3)
		}
		e.byte(0x90)
		return nil
	case OpCdqe:
		rexSpec{w: true}.emitTo(e)
		e.byte(0x98)
		return nil
	case OpCqo:
		rexSpec{w: true}.emitTo(e)
		e.byte(0x99)
		return nil
	case OpMovs, OpStos, OpLods:
		return e.encodeString(inst, size)
	case OpNop:
		e.byte(0x90)
		return nil
	case OpHlt:
		e.byte(0xF4)
		return nil
	case OpSyscall:
		e.bytes(0x0F, 0x05)
		return nil
	case OpSysret:
		rexSpec{w: true}.emitTo(e)
		e.bytes(0x0F, 0x07)
		return nil
	case OpIretq:
		rexSpec{w: true}.emitTo(e)
		e.byte(0xCF)
		return nil
	case OpRdtsc:
		e.bytes(0x0F, 0x31)
		return nil
	case OpCpuid:
		e.bytes(0x0F, 0xA2)
		return nil
	case OpPtlcall:
		e.bytes(0x0F, 0x37)
		return nil
	case OpHypercall:
		e.bytes(0x0F, 0x01, 0xC1)
		return nil
	case OpMovToCR, OpMovFromCR:
		return e.encodeMovCR(inst)
	case OpInvlpg:
		if inst.Dst.Kind != KindMem {
			return fmt.Errorf("x86: invlpg needs mem operand")
		}
		m := modrmArgs{reg: 7, mem: inst.Dst.Mem}
		rx := rexSpec{}
		if err := m.prep(&rx); err != nil {
			return err
		}
		rx.emitTo(e)
		e.bytes(0x0F, 0x01)
		m.emit(e)
		return nil
	case OpMovsdLoad, OpMovsdStore, OpAddsd, OpSubsd, OpMulsd, OpDivsd,
		OpCvtsi2sd, OpCvttsd2si, OpUcomisd, OpMovqXR, OpMovqRX:
		return e.encodeSSE(inst)
	}
	return fmt.Errorf("x86: cannot encode %s", inst.Op)
}

// operandModRM builds modrmArgs with `reg` from a register operand and
// `rm` from a reg-or-mem operand.
func operandModRM(regOp Operand, rmOp Operand) (modrmArgs, error) {
	var m modrmArgs
	if regOp.Kind == KindReg {
		m.reg = regOp.Reg.Enc()
	}
	switch rmOp.Kind {
	case KindReg:
		m.isRM = true
		m.rm = rmOp.Reg.Enc()
	case KindMem:
		m.mem = rmOp.Mem
	default:
		return m, fmt.Errorf("x86: bad r/m operand kind %d", rmOp.Kind)
	}
	return m, nil
}

// emitModRMInst emits REX + opcode bytes + ModRM for a standard
// two-operand form. op2 < 0 means single-byte opcode.
func (e *encoder) emitModRMInst(size uint8, m modrmArgs, force8 bool, opcodes ...byte) error {
	rx := rexSpec{w: size == 8, force: force8}
	if err := m.prep(&rx); err != nil {
		return err
	}
	rx.emitTo(e)
	e.bytes(opcodes...)
	m.emit(e)
	return nil
}

// rmForce8 reports whether an 8-bit encoding of the given operands
// needs a forced REX prefix.
func rmForce8(size uint8, ops ...Operand) bool {
	if size != 1 {
		return false
	}
	for _, o := range ops {
		if o.Kind == KindReg && need8(o.Reg) {
			return true
		}
	}
	return false
}

func (e *encoder) encodeALU(inst *Inst, idx uint8, size uint8) error {
	base := idx * 8
	d, s := inst.Dst, inst.Src
	switch {
	case s.Kind == KindImm:
		m, err := operandModRM(Operand{}, d)
		if err != nil {
			return err
		}
		m.reg = idx
		imm := s.Imm
		if size == 1 {
			return e.encodeALUImm(size, m, rmForce8(size, d), 0x80, imm, 1)
		}
		if imm >= -128 && imm <= 127 {
			return e.encodeALUImm(size, m, false, 0x83, imm, 1)
		}
		w := 4
		if size == 2 {
			w = 2
		}
		return e.encodeALUImm(size, m, false, 0x81, imm, w)
	case d.Kind == KindReg && (s.Kind == KindReg || s.Kind == KindMem):
		// reg, r/m form: base+2 (8-bit) or base+3.
		m, err := operandModRM(d, s)
		if err != nil {
			return err
		}
		opc := base + 3
		if size == 1 {
			opc = base + 2
		}
		return e.emitModRMInst(size, m, rmForce8(size, d, s), opc)
	case d.Kind == KindMem && s.Kind == KindReg:
		m, err := operandModRM(s, d)
		if err != nil {
			return err
		}
		opc := base + 1
		if size == 1 {
			opc = base
		}
		return e.emitModRMInst(size, m, rmForce8(size, s), opc)
	}
	return fmt.Errorf("x86: bad ALU operands %s", inst)
}

func (e *encoder) encodeALUImm(size uint8, m modrmArgs, force8 bool, opc byte, imm int64, immW int) error {
	if err := e.emitModRMInst(size, m, force8, opc); err != nil {
		return err
	}
	e.imm(imm, immW)
	return nil
}

func (e *encoder) encodeTest(inst *Inst, size uint8) error {
	d, s := inst.Dst, inst.Src
	if s.Kind == KindImm {
		m, err := operandModRM(Operand{}, d)
		if err != nil {
			return err
		}
		m.reg = 0
		opc := byte(0xF7)
		immW := 4
		if size == 1 {
			opc, immW = 0xF6, 1
		} else if size == 2 {
			immW = 2
		}
		if err := e.emitModRMInst(size, m, rmForce8(size, d), opc); err != nil {
			return err
		}
		e.imm(s.Imm, immW)
		return nil
	}
	// TEST r/m, r: 84/85.
	if s.Kind != KindReg {
		return fmt.Errorf("x86: test needs reg or imm source")
	}
	m, err := operandModRM(s, d)
	if err != nil {
		return err
	}
	opc := byte(0x85)
	if size == 1 {
		opc = 0x84
	}
	return e.emitModRMInst(size, m, rmForce8(size, d, s), opc)
}

func (e *encoder) encodeMov(inst *Inst, size uint8) error {
	d, s := inst.Dst, inst.Src
	switch {
	case s.Kind == KindImm && d.Kind == KindReg:
		if size == 8 && (s.Imm > 0x7FFFFFFF || s.Imm < -0x80000000) {
			// movabs: REX.W B8+r imm64
			rx := rexSpec{w: true, b: d.Reg.Enc() >= 8}
			rx.emitTo(e)
			e.byte(0xB8 + d.Reg.Enc()&7)
			e.u64(uint64(s.Imm))
			return nil
		}
		fallthrough
	case s.Kind == KindImm:
		m, err := operandModRM(Operand{}, d)
		if err != nil {
			return err
		}
		m.reg = 0
		opc := byte(0xC7)
		immW := 4
		if size == 1 {
			opc, immW = 0xC6, 1
		} else if size == 2 {
			immW = 2
		}
		if err := e.emitModRMInst(size, m, rmForce8(size, d), opc); err != nil {
			return err
		}
		e.imm(s.Imm, immW)
		return nil
	case d.Kind == KindReg && (s.Kind == KindReg || s.Kind == KindMem):
		m, err := operandModRM(d, s)
		if err != nil {
			return err
		}
		opc := byte(0x8B)
		if size == 1 {
			opc = 0x8A
		}
		return e.emitModRMInst(size, m, rmForce8(size, d, s), opc)
	case d.Kind == KindMem && s.Kind == KindReg:
		m, err := operandModRM(s, d)
		if err != nil {
			return err
		}
		opc := byte(0x89)
		if size == 1 {
			opc = 0x88
		}
		return e.emitModRMInst(size, m, rmForce8(size, s), opc)
	}
	return fmt.Errorf("x86: bad mov operands %s", inst)
}

// encodeMovExt handles MOVZX/MOVSX. inst.OpSize is the destination
// size; Src2.Imm (1 or 2) carries the source width.
func (e *encoder) encodeMovExt(inst *Inst, size uint8) error {
	if inst.Dst.Kind != KindReg {
		return fmt.Errorf("x86: movzx/movsx needs reg dst")
	}
	srcW := inst.Src2.Imm
	if srcW != 1 && srcW != 2 {
		return fmt.Errorf("x86: movzx/movsx source width must be 1 or 2")
	}
	var opc byte
	if inst.Op == OpMovzx {
		opc = 0xB6
	} else {
		opc = 0xBE
	}
	if srcW == 2 {
		opc++
	}
	m, err := operandModRM(inst.Dst, inst.Src)
	if err != nil {
		return err
	}
	force := srcW == 1 && inst.Src.Kind == KindReg && need8(inst.Src.Reg)
	return e.emitModRMInst(size, m, force, 0x0F, opc)
}

// encodeRRM emits a reg, r/m instruction with a one-byte opcode.
func (e *encoder) encodeRRM(inst *Inst, size uint8, opc byte) error {
	m, err := operandModRM(inst.Dst, inst.Src)
	if err != nil {
		return err
	}
	return e.emitModRMInst(size, m, false, opc)
}

// encodeRRMOp2 emits a reg, r/m instruction with a 0F xx opcode.
func (e *encoder) encodeRRMOp2(inst *Inst, size uint8, opc byte) error {
	m, err := operandModRM(inst.Dst, inst.Src)
	if err != nil {
		return err
	}
	return e.emitModRMInst(size, m, false, 0x0F, opc)
}

// encodeMRReg emits an r/m, reg instruction pair (8-bit, wider).
func (e *encoder) encodeMRReg(inst *Inst, size uint8, opc8, opc byte) error {
	m, err := operandModRM(inst.Src, inst.Dst)
	if err != nil {
		return err
	}
	o := opc
	if size == 1 {
		o = opc8
	}
	return e.emitModRMInst(size, m, rmForce8(size, inst.Dst, inst.Src), o)
}

// encodeMRReg2 is encodeMRReg with a 0F prefix (CMPXCHG, XADD).
func (e *encoder) encodeMRReg2(inst *Inst, size uint8, opc8, opc byte) error {
	m, err := operandModRM(inst.Src, inst.Dst)
	if err != nil {
		return err
	}
	o := opc
	if size == 1 {
		o = opc8
	}
	return e.emitModRMInst(size, m, rmForce8(size, inst.Dst, inst.Src), 0x0F, o)
}

func (e *encoder) encodePushPop(inst *Inst) error {
	d := inst.Dst
	switch {
	case inst.Op == OpPush && d.Kind == KindImm:
		if d.Imm >= -128 && d.Imm <= 127 {
			e.byte(0x6A)
			e.byte(byte(d.Imm))
		} else {
			e.byte(0x68)
			e.u32(uint32(d.Imm))
		}
		return nil
	case d.Kind == KindReg && d.Reg.IsGPR():
		rx := rexSpec{b: d.Reg.Enc() >= 8}
		rx.emitTo(e)
		if inst.Op == OpPush {
			e.byte(0x50 + d.Reg.Enc()&7)
		} else {
			e.byte(0x58 + d.Reg.Enc()&7)
		}
		return nil
	case d.Kind == KindMem && inst.Op == OpPush:
		m := modrmArgs{reg: 6, mem: d.Mem}
		return e.emitModRMInst(4, m, false, 0xFF) // push is 64-bit; no REX.W needed
	case d.Kind == KindMem && inst.Op == OpPop:
		m := modrmArgs{reg: 0, mem: d.Mem}
		return e.emitModRMInst(4, m, false, 0x8F)
	}
	return fmt.Errorf("x86: bad push/pop operand %s", inst)
}

func (e *encoder) encodeShift(inst *Inst, size uint8) error {
	idx, _ := shiftIndex(inst.Op)
	m, err := operandModRM(Operand{}, inst.Dst)
	if err != nil {
		return err
	}
	m.reg = idx
	force := rmForce8(size, inst.Dst)
	switch {
	case inst.Src.Kind == KindImm:
		opc := byte(0xC1)
		if size == 1 {
			opc = 0xC0
		}
		if err := e.emitModRMInst(size, m, force, opc); err != nil {
			return err
		}
		e.byte(byte(inst.Src.Imm))
		return nil
	case inst.Src.Kind == KindReg && inst.Src.Reg == RCX:
		opc := byte(0xD3)
		if size == 1 {
			opc = 0xD2
		}
		return e.emitModRMInst(size, m, force, opc)
	}
	return fmt.Errorf("x86: shift count must be imm or cl")
}

func (e *encoder) encodeGroup3(inst *Inst, size uint8) error {
	// 2- and 3-operand IMUL have dedicated encodings.
	if inst.Op == OpImul && inst.Src.Kind != KindNone {
		if inst.Dst.Kind != KindReg {
			return fmt.Errorf("x86: imul needs reg dst")
		}
		m, err := operandModRM(inst.Dst, inst.Src)
		if err != nil {
			return err
		}
		if inst.Src2.Kind == KindImm {
			imm := inst.Src2.Imm
			if imm >= -128 && imm <= 127 {
				if err := e.emitModRMInst(size, m, false, 0x6B); err != nil {
					return err
				}
				e.byte(byte(imm))
			} else {
				if err := e.emitModRMInst(size, m, false, 0x69); err != nil {
					return err
				}
				if size == 2 {
					e.u16(uint16(imm))
				} else {
					e.u32(uint32(imm))
				}
			}
			return nil
		}
		return e.emitModRMInst(size, m, false, 0x0F, 0xAF)
	}
	var idx uint8
	switch inst.Op {
	case OpNot:
		idx = 2
	case OpNeg:
		idx = 3
	case OpMul:
		idx = 4
	case OpImul:
		idx = 5
	case OpDiv:
		idx = 6
	case OpIdiv:
		idx = 7
	}
	m, err := operandModRM(Operand{}, inst.Dst)
	if err != nil {
		return err
	}
	m.reg = idx
	opc := byte(0xF7)
	if size == 1 {
		opc = 0xF6
	}
	return e.emitModRMInst(size, m, rmForce8(size, inst.Dst), opc)
}

func (e *encoder) encodeIncDec(inst *Inst, size uint8) error {
	var idx uint8
	if inst.Op == OpDec {
		idx = 1
	}
	m, err := operandModRM(Operand{}, inst.Dst)
	if err != nil {
		return err
	}
	m.reg = idx
	opc := byte(0xFF)
	if size == 1 {
		opc = 0xFE
	}
	return e.emitModRMInst(size, m, rmForce8(size, inst.Dst), opc)
}

func (e *encoder) encodeJmp(inst *Inst) error {
	switch inst.Dst.Kind {
	case KindImm:
		e.byte(0xE9)
		e.u32(uint32(inst.Dst.Imm))
		return nil
	case KindReg, KindMem:
		m, err := operandModRM(Operand{}, inst.Dst)
		if err != nil {
			return err
		}
		m.reg = 4
		return e.emitModRMInst(4, m, false, 0xFF)
	}
	return fmt.Errorf("x86: bad jmp operand")
}

func (e *encoder) encodeCall(inst *Inst) error {
	switch inst.Dst.Kind {
	case KindImm:
		e.byte(0xE8)
		e.u32(uint32(inst.Dst.Imm))
		return nil
	case KindReg, KindMem:
		m, err := operandModRM(Operand{}, inst.Dst)
		if err != nil {
			return err
		}
		m.reg = 2
		return e.emitModRMInst(4, m, false, 0xFF)
	}
	return fmt.Errorf("x86: bad call operand")
}

func (e *encoder) encodeSetcc(inst *Inst) error {
	m, err := operandModRM(Operand{}, inst.Dst)
	if err != nil {
		return err
	}
	m.reg = 0
	return e.emitModRMInst(1, m, rmForce8(1, inst.Dst), 0x0F, 0x90|byte(inst.Cond))
}

func (e *encoder) encodeString(inst *Inst, size uint8) error {
	var opc byte
	switch inst.Op {
	case OpMovs:
		opc = 0xA5
		if size == 1 {
			opc = 0xA4
		}
	case OpStos:
		opc = 0xAB
		if size == 1 {
			opc = 0xAA
		}
	case OpLods:
		opc = 0xAD
		if size == 1 {
			opc = 0xAC
		}
	}
	rexSpec{w: size == 8}.emitTo(e)
	e.byte(opc)
	return nil
}

func (e *encoder) encodeMovCR(inst *Inst) error {
	var crn int64
	var gpr Reg
	var opc byte
	if inst.Op == OpMovToCR {
		crn, gpr, opc = inst.Dst.Imm, inst.Src.Reg, 0x22
	} else {
		crn, gpr, opc = inst.Src.Imm, inst.Dst.Reg, 0x20
	}
	if crn < 0 || crn > 7 {
		return fmt.Errorf("x86: bad control register cr%d", crn)
	}
	rx := rexSpec{b: gpr.Enc() >= 8}
	rx.emitTo(e)
	e.bytes(0x0F, opc, 0xC0|byte(crn)<<3|gpr.Enc()&7)
	return nil
}

// encodeSSE emits the scalar double-precision subset. All use ModRM
// with XMM registers in reg, XMM or memory in r/m (or a GPR for the
// conversion/transfer forms).
func (e *encoder) encodeSSE(inst *Inst) error {
	type form struct {
		prefix byte // 0xF2, 0x66 or 0
		opc    byte
		rexW   bool
		// regIsDst: Dst occupies ModRM.reg; otherwise Src does.
		regIsDst bool
	}
	var f form
	switch inst.Op {
	case OpMovsdLoad:
		f = form{0xF2, 0x10, false, true}
	case OpMovsdStore:
		f = form{0xF2, 0x11, false, false}
	case OpAddsd:
		f = form{0xF2, 0x58, false, true}
	case OpMulsd:
		f = form{0xF2, 0x59, false, true}
	case OpSubsd:
		f = form{0xF2, 0x5C, false, true}
	case OpDivsd:
		f = form{0xF2, 0x5E, false, true}
	case OpCvtsi2sd:
		f = form{0xF2, 0x2A, true, true}
	case OpCvttsd2si:
		f = form{0xF2, 0x2C, true, true}
	case OpUcomisd:
		f = form{0x66, 0x2E, false, true}
	case OpMovqXR:
		f = form{0x66, 0x6E, true, true}
	case OpMovqRX:
		f = form{0x66, 0x7E, true, false}
	}
	var m modrmArgs
	var err error
	if f.regIsDst {
		m, err = operandModRM(inst.Dst, inst.Src)
	} else {
		m, err = operandModRM(inst.Src, inst.Dst)
	}
	if err != nil {
		return err
	}
	if f.prefix != 0 {
		e.byte(f.prefix)
	}
	rx := rexSpec{w: f.rexW}
	if err := m.prep(&rx); err != nil {
		return err
	}
	rx.emitTo(e)
	e.bytes(0x0F, f.opc)
	m.emit(e)
	return nil
}
