// Package x86 defines the subset of the x86-64 instruction set
// architecture modeled by this simulator: architectural registers, an
// instruction representation, a binary decoder for real x86-64 machine
// code (REX prefixes, ModRM/SIB addressing, displacements, immediates),
// and an assembler/DSL used to build guest programs, mirroring how
// PTLsim consumes genuine x86-64 byte streams produced by a compiler.
package x86

import "fmt"

// Reg names an architectural register. General-purpose registers come
// first and match their hardware encoding (RAX=0 ... R15=15), followed
// by the scalar FP registers (XMM0-15), RIP and RFLAGS pseudo-registers.
type Reg uint8

// General purpose registers, in hardware encoding order.
const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	// XMM0..XMM15 scalar FP registers.
	XMM0
	XMM1
	XMM2
	XMM3
	XMM4
	XMM5
	XMM6
	XMM7
	XMM8
	XMM9
	XMM10
	XMM11
	XMM12
	XMM13
	XMM14
	XMM15
	// RIP is the instruction pointer (used for RIP-relative addressing).
	RIP
	// RegNone marks an absent register operand (e.g. no index register).
	RegNone Reg = 0xFF
)

// NumGPR is the count of general-purpose registers.
const NumGPR = 16

// NumXMM is the count of scalar FP registers.
const NumXMM = 16

var gprNames = [NumGPR]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

// IsGPR reports whether r is a general-purpose register.
func (r Reg) IsGPR() bool { return r < NumGPR }

// IsXMM reports whether r is a scalar FP register.
func (r Reg) IsXMM() bool { return r >= XMM0 && r <= XMM15 }

// Enc returns the 4-bit hardware encoding of the register (the low 3
// bits go into ModRM/SIB fields; bit 3 goes into the REX prefix).
func (r Reg) Enc() uint8 {
	switch {
	case r.IsGPR():
		return uint8(r)
	case r.IsXMM():
		return uint8(r - XMM0)
	default:
		return 0
	}
}

// String returns the conventional assembly name of the register.
func (r Reg) String() string {
	switch {
	case r.IsGPR():
		return gprNames[r]
	case r.IsXMM():
		return fmt.Sprintf("xmm%d", r-XMM0)
	case r == RIP:
		return "rip"
	case r == RegNone:
		return "none"
	default:
		return fmt.Sprintf("reg(%d)", uint8(r))
	}
}

// RFLAGS bit positions for the condition codes the simulator models.
// These match the hardware RFLAGS layout so flag-merging microcode can
// use real masks.
const (
	FlagCF uint64 = 1 << 0
	FlagPF uint64 = 1 << 2
	FlagAF uint64 = 1 << 4
	FlagZF uint64 = 1 << 6
	FlagSF uint64 = 1 << 7
	FlagIF uint64 = 1 << 9 // interrupt enable
	FlagOF uint64 = 1 << 11
)

// FlagsMask covers every flag bit the simulator tracks.
const FlagsMask = FlagCF | FlagPF | FlagAF | FlagZF | FlagSF | FlagOF

// Cond is an x86 condition code, encoded exactly as in the low 4 bits
// of the Jcc/SETcc/CMOVcc opcodes.
type Cond uint8

// Condition codes in hardware encoding order.
const (
	CondO  Cond = iota // overflow
	CondNO             // not overflow
	CondB              // below (CF)
	CondAE             // above or equal (!CF)
	CondE              // equal (ZF)
	CondNE             // not equal (!ZF)
	CondBE             // below or equal (CF|ZF)
	CondA              // above (!CF & !ZF)
	CondS              // sign (SF)
	CondNS             // not sign (!SF)
	CondP              // parity (PF)
	CondNP             // not parity (!PF)
	CondL              // less (SF != OF)
	CondGE             // greater or equal (SF == OF)
	CondLE             // less or equal (ZF | SF != OF)
	CondG              // greater (!ZF & SF == OF)
)

var condNames = [16]string{
	"o", "no", "b", "ae", "e", "ne", "be", "a",
	"s", "ns", "p", "np", "l", "ge", "le", "g",
}

// String returns the condition suffix (e.g. "ne" for CondNE).
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cc(%d)", uint8(c))
}

// Eval evaluates the condition against an RFLAGS value.
func (c Cond) Eval(flags uint64) bool {
	cf := flags&FlagCF != 0
	zf := flags&FlagZF != 0
	sf := flags&FlagSF != 0
	of := flags&FlagOF != 0
	pf := flags&FlagPF != 0
	switch c {
	case CondO:
		return of
	case CondNO:
		return !of
	case CondB:
		return cf
	case CondAE:
		return !cf
	case CondE:
		return zf
	case CondNE:
		return !zf
	case CondBE:
		return cf || zf
	case CondA:
		return !cf && !zf
	case CondS:
		return sf
	case CondNS:
		return !sf
	case CondP:
		return pf
	case CondNP:
		return !pf
	case CondL:
		return sf != of
	case CondGE:
		return sf == of
	case CondLE:
		return zf || sf != of
	case CondG:
		return !zf && sf == of
	default:
		return false
	}
}

// Negate returns the inverse condition (flips the low encoding bit,
// exactly as hardware does).
func (c Cond) Negate() Cond { return c ^ 1 }
