package x86

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Decoding errors.
var (
	// ErrTruncated indicates the byte window ended mid-instruction; the
	// caller (basic block builder) should fetch the next page and retry,
	// which is how page-crossing instructions are handled.
	ErrTruncated = errors.New("x86: truncated instruction")
	// ErrUndefined indicates an undefined or unsupported opcode; the
	// core raises #UD when such an instruction reaches execution.
	ErrUndefined = errors.New("x86: undefined opcode")
)

// MaxInstLen is the architectural limit on x86 instruction length.
const MaxInstLen = 15

// Decode decodes a single x86-64 instruction (long mode) from the start
// of code. It returns the instruction with Len set to the number of
// bytes consumed. Relative branch displacements are left relative (from
// the end of the instruction) in Dst.Imm.
func Decode(code []byte) (Inst, error) {
	d := decoder{code: code}
	inst, err := d.decode()
	if err != nil {
		return Inst{}, err
	}
	if d.pos > MaxInstLen {
		return Inst{}, fmt.Errorf("%w: %d bytes", ErrUndefined, d.pos)
	}
	inst.Len = uint8(d.pos)
	return inst, nil
}

type decoder struct {
	code []byte
	pos  int

	lock   bool
	rep    bool // F3
	repF2  bool // F2 (also SSE mandatory prefix)
	osize  bool // 66 (also SSE mandatory prefix)
	rex    byte
	hasRex bool
}

func (d *decoder) peek() (byte, error) {
	if d.pos >= len(d.code) {
		return 0, ErrTruncated
	}
	return d.code[d.pos], nil
}

func (d *decoder) u8() (byte, error) {
	b, err := d.peek()
	if err != nil {
		return 0, err
	}
	d.pos++
	return b, nil
}

func (d *decoder) s8() (int64, error) {
	b, err := d.u8()
	return int64(int8(b)), err
}

func (d *decoder) s16() (int64, error) {
	if d.pos+2 > len(d.code) {
		return 0, ErrTruncated
	}
	v := int64(int16(binary.LittleEndian.Uint16(d.code[d.pos:])))
	d.pos += 2
	return v, nil
}

func (d *decoder) s32() (int64, error) {
	if d.pos+4 > len(d.code) {
		return 0, ErrTruncated
	}
	v := int64(int32(binary.LittleEndian.Uint32(d.code[d.pos:])))
	d.pos += 4
	return v, nil
}

func (d *decoder) s64() (int64, error) {
	if d.pos+8 > len(d.code) {
		return 0, ErrTruncated
	}
	v := int64(binary.LittleEndian.Uint64(d.code[d.pos:]))
	d.pos += 8
	return v, nil
}

// imm reads a sign-extended immediate of the operand-size-appropriate
// width (imm32 for 64-bit operands, as hardware does).
func (d *decoder) imm(size uint8) (int64, error) {
	switch size {
	case 1:
		return d.s8()
	case 2:
		return d.s16()
	default:
		return d.s32()
	}
}

// opSize returns the effective operand size from the prefix state.
func (d *decoder) opSize() uint8 {
	if d.rex&8 != 0 {
		return 8
	}
	if d.osize {
		return 2
	}
	return 4
}

func (d *decoder) rexBit(bit byte) uint8 {
	if d.rex&bit != 0 {
		return 8
	}
	return 0
}

// modRM decodes a ModRM byte (plus SIB/displacement) into the reg field
// value and an r/m operand. xmmRM selects XMM register naming for
// register-direct r/m.
func (d *decoder) modRM(xmmReg, xmmRM bool) (reg uint8, rm Operand, err error) {
	b, err := d.u8()
	if err != nil {
		return 0, Operand{}, err
	}
	mod := b >> 6
	regBits := (b >> 3) & 7
	rmBits := b & 7
	reg = regBits + d.rexBit(4)
	_ = xmmReg // reg field is returned raw; caller maps to XMM if needed

	if mod == 3 {
		r := Reg(rmBits + d.rexBit(1))
		if xmmRM {
			r = XMM0 + r
		}
		return reg, RegOp(r), nil
	}

	mem := MemRef{Base: RegNone, Index: RegNone, Scale: 1}
	if rmBits == 4 { // SIB follows
		sb, err := d.u8()
		if err != nil {
			return 0, Operand{}, err
		}
		scale := uint8(1) << (sb >> 6)
		idx := (sb >> 3) & 7
		base := sb & 7
		if idx != 4 || d.rex&2 != 0 {
			mem.Index = Reg(idx + d.rexBit(2))
			mem.Scale = scale
		}
		if base == 5 && mod == 0 {
			// No base, disp32.
			disp, err := d.s32()
			if err != nil {
				return 0, Operand{}, err
			}
			mem.Disp = int32(disp)
			return reg, MemOp(mem), nil
		}
		mem.Base = Reg(base + d.rexBit(1))
	} else if rmBits == 5 && mod == 0 {
		// RIP-relative.
		disp, err := d.s32()
		if err != nil {
			return 0, Operand{}, err
		}
		mem.Base = RIP
		mem.Disp = int32(disp)
		return reg, MemOp(mem), nil
	} else {
		mem.Base = Reg(rmBits + d.rexBit(1))
	}
	switch mod {
	case 1:
		disp, err := d.s8()
		if err != nil {
			return 0, Operand{}, err
		}
		mem.Disp = int32(disp)
	case 2:
		disp, err := d.s32()
		if err != nil {
			return 0, Operand{}, err
		}
		mem.Disp = int32(disp)
	}
	return reg, MemOp(mem), nil
}

func (d *decoder) decode() (Inst, error) {
	// Prefix loop.
	for {
		b, err := d.peek()
		if err != nil {
			return Inst{}, err
		}
		switch b {
		case 0xF0:
			d.lock = true
		case 0xF3:
			d.rep = true
		case 0xF2:
			d.repF2 = true
		case 0x66:
			d.osize = true
		default:
			if b >= 0x40 && b <= 0x4F {
				d.rex = b
				d.hasRex = true
				d.pos++
				// REX must be the last prefix before the opcode.
				return d.opcode()
			}
			return d.opcode()
		}
		d.pos++
	}
}

func aluOps() [8]Op {
	return [8]Op{OpAdd, OpOr, OpAdc, OpSbb, OpAnd, OpSub, OpXor, OpCmp}
}

func (d *decoder) opcode() (Inst, error) {
	op, err := d.u8()
	if err != nil {
		return Inst{}, err
	}
	size := d.opSize()

	// Group-1 ALU: opcodes 0x00-0x3B in the pattern base+{0,1,2,3}.
	if op < 0x40 && op&7 <= 3 {
		alu := aluOps()[op>>3]
		form := op & 7
		sz := size
		if form == 0 || form == 2 {
			sz = 1
		}
		reg, rm, err := d.modRM(false, false)
		if err != nil {
			return Inst{}, err
		}
		r := RegOp(Reg(reg))
		if form <= 1 { // r/m, r
			return Inst{Op: alu, OpSize: sz, Lock: d.lock, Dst: rm, Src: r}, nil
		}
		return Inst{Op: alu, OpSize: sz, Dst: r, Src: rm}, nil
	}

	switch {
	case op >= 0x50 && op <= 0x57:
		return Inst{Op: OpPush, OpSize: 8, Dst: RegOp(Reg(op - 0x50 + d.rexBit(1)))}, nil
	case op >= 0x58 && op <= 0x5F:
		return Inst{Op: OpPop, OpSize: 8, Dst: RegOp(Reg(op - 0x58 + d.rexBit(1)))}, nil
	case op >= 0x70 && op <= 0x7F:
		disp, err := d.s8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpJcc, Cond: Cond(op - 0x70), OpSize: 8, Dst: ImmOp(disp)}, nil
	case op >= 0xB0 && op <= 0xB7:
		imm, err := d.s8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpMov, OpSize: 1, Dst: RegOp(Reg(op - 0xB0 + d.rexBit(1))), Src: ImmOp(imm)}, nil
	case op >= 0xB8 && op <= 0xBF:
		r := Reg(op - 0xB8 + d.rexBit(1))
		if size == 8 {
			imm, err := d.s64()
			if err != nil {
				return Inst{}, err
			}
			return Inst{Op: OpMov, OpSize: 8, Dst: RegOp(r), Src: ImmOp(imm)}, nil
		}
		imm, err := d.imm(size)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpMov, OpSize: size, Dst: RegOp(r), Src: ImmOp(imm)}, nil
	}

	switch op {
	case 0x63: // MOVSXD r64, r/m32
		reg, rm, err := d.modRM(false, false)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpMovsxd, OpSize: 8, Dst: RegOp(Reg(reg)), Src: rm}, nil
	case 0x68:
		imm, err := d.s32()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpPush, OpSize: 8, Dst: ImmOp(imm)}, nil
	case 0x6A:
		imm, err := d.s8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpPush, OpSize: 8, Dst: ImmOp(imm)}, nil
	case 0x69, 0x6B:
		reg, rm, err := d.modRM(false, false)
		if err != nil {
			return Inst{}, err
		}
		var imm int64
		if op == 0x6B {
			imm, err = d.s8()
		} else {
			imm, err = d.imm(size)
		}
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpImul, OpSize: size, Dst: RegOp(Reg(reg)), Src: rm, Src2: ImmOp(imm)}, nil
	case 0x80, 0x81, 0x83:
		reg, rm, err := d.modRM(false, false)
		if err != nil {
			return Inst{}, err
		}
		sz := size
		var imm int64
		switch op {
		case 0x80:
			sz = 1
			imm, err = d.s8()
		case 0x83:
			imm, err = d.s8()
		default:
			imm, err = d.imm(size)
		}
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: aluOps()[reg&7], OpSize: sz, Lock: d.lock, Dst: rm, Src: ImmOp(imm)}, nil
	case 0x84, 0x85:
		reg, rm, err := d.modRM(false, false)
		if err != nil {
			return Inst{}, err
		}
		sz := size
		if op == 0x84 {
			sz = 1
		}
		return Inst{Op: OpTest, OpSize: sz, Dst: rm, Src: RegOp(Reg(reg))}, nil
	case 0x86, 0x87:
		reg, rm, err := d.modRM(false, false)
		if err != nil {
			return Inst{}, err
		}
		sz := size
		if op == 0x86 {
			sz = 1
		}
		return Inst{Op: OpXchg, OpSize: sz, Lock: d.lock, Dst: rm, Src: RegOp(Reg(reg))}, nil
	case 0x88, 0x89:
		reg, rm, err := d.modRM(false, false)
		if err != nil {
			return Inst{}, err
		}
		sz := size
		if op == 0x88 {
			sz = 1
		}
		return Inst{Op: OpMov, OpSize: sz, Dst: rm, Src: RegOp(Reg(reg))}, nil
	case 0x8A, 0x8B:
		reg, rm, err := d.modRM(false, false)
		if err != nil {
			return Inst{}, err
		}
		sz := size
		if op == 0x8A {
			sz = 1
		}
		return Inst{Op: OpMov, OpSize: sz, Dst: RegOp(Reg(reg)), Src: rm}, nil
	case 0x8D:
		reg, rm, err := d.modRM(false, false)
		if err != nil {
			return Inst{}, err
		}
		if rm.Kind != KindMem {
			return Inst{}, ErrUndefined
		}
		return Inst{Op: OpLea, OpSize: size, Dst: RegOp(Reg(reg)), Src: rm}, nil
	case 0x8F:
		reg, rm, err := d.modRM(false, false)
		if err != nil {
			return Inst{}, err
		}
		if reg&7 != 0 {
			return Inst{}, ErrUndefined
		}
		return Inst{Op: OpPop, OpSize: 8, Dst: rm}, nil
	case 0x90:
		if d.rep {
			return Inst{Op: OpPause, OpSize: size}, nil
		}
		return Inst{Op: OpNop, OpSize: size}, nil
	case 0x98:
		return Inst{Op: OpCdqe, OpSize: size}, nil
	case 0x99:
		return Inst{Op: OpCqo, OpSize: size}, nil
	case 0xA4, 0xA5:
		sz := size
		if op == 0xA4 {
			sz = 1
		}
		return Inst{Op: OpMovs, OpSize: sz, Rep: d.rep}, nil
	case 0xAA, 0xAB:
		sz := size
		if op == 0xAA {
			sz = 1
		}
		return Inst{Op: OpStos, OpSize: sz, Rep: d.rep}, nil
	case 0xAC, 0xAD:
		sz := size
		if op == 0xAC {
			sz = 1
		}
		return Inst{Op: OpLods, OpSize: sz, Rep: d.rep}, nil
	case 0xC0, 0xC1, 0xD2, 0xD3:
		reg, rm, err := d.modRM(false, false)
		if err != nil {
			return Inst{}, err
		}
		var shOp Op
		switch reg & 7 {
		case 0:
			shOp = OpRol
		case 1:
			shOp = OpRor
		case 4:
			shOp = OpShl
		case 5:
			shOp = OpShr
		case 7:
			shOp = OpSar
		default:
			return Inst{}, ErrUndefined
		}
		sz := size
		if op == 0xC0 || op == 0xD2 {
			sz = 1
		}
		if op == 0xC0 || op == 0xC1 {
			imm, err := d.s8()
			if err != nil {
				return Inst{}, err
			}
			return Inst{Op: shOp, OpSize: sz, Dst: rm, Src: ImmOp(imm)}, nil
		}
		return Inst{Op: shOp, OpSize: sz, Dst: rm, Src: RegOp(RCX)}, nil
	case 0xC3:
		return Inst{Op: OpRet, OpSize: 8}, nil
	case 0xC6, 0xC7:
		reg, rm, err := d.modRM(false, false)
		if err != nil {
			return Inst{}, err
		}
		if reg&7 != 0 {
			return Inst{}, ErrUndefined
		}
		sz := size
		if op == 0xC6 {
			sz = 1
		}
		var imm int64
		if sz == 1 {
			imm, err = d.s8()
		} else {
			imm, err = d.imm(sz)
		}
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpMov, OpSize: sz, Dst: rm, Src: ImmOp(imm)}, nil
	case 0xCF:
		if size == 8 {
			return Inst{Op: OpIretq, OpSize: 8}, nil
		}
		return Inst{}, ErrUndefined
	case 0xE8:
		disp, err := d.s32()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpCall, OpSize: 8, Dst: ImmOp(disp)}, nil
	case 0xE9:
		disp, err := d.s32()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpJmp, OpSize: 8, Dst: ImmOp(disp)}, nil
	case 0xEB:
		disp, err := d.s8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpJmp, OpSize: 8, Dst: ImmOp(disp)}, nil
	case 0xF4:
		return Inst{Op: OpHlt, OpSize: 8}, nil
	case 0xF6, 0xF7:
		reg, rm, err := d.modRM(false, false)
		if err != nil {
			return Inst{}, err
		}
		sz := size
		if op == 0xF6 {
			sz = 1
		}
		switch reg & 7 {
		case 0, 1: // TEST r/m, imm
			var imm int64
			if sz == 1 {
				imm, err = d.s8()
			} else {
				imm, err = d.imm(sz)
			}
			if err != nil {
				return Inst{}, err
			}
			return Inst{Op: OpTest, OpSize: sz, Dst: rm, Src: ImmOp(imm)}, nil
		case 2:
			return Inst{Op: OpNot, OpSize: sz, Lock: d.lock, Dst: rm}, nil
		case 3:
			return Inst{Op: OpNeg, OpSize: sz, Lock: d.lock, Dst: rm}, nil
		case 4:
			return Inst{Op: OpMul, OpSize: sz, Dst: rm}, nil
		case 5:
			return Inst{Op: OpImul, OpSize: sz, Dst: rm}, nil
		case 6:
			return Inst{Op: OpDiv, OpSize: sz, Dst: rm}, nil
		default:
			return Inst{Op: OpIdiv, OpSize: sz, Dst: rm}, nil
		}
	case 0xFE, 0xFF:
		reg, rm, err := d.modRM(false, false)
		if err != nil {
			return Inst{}, err
		}
		sz := size
		if op == 0xFE {
			sz = 1
		}
		switch reg & 7 {
		case 0:
			return Inst{Op: OpInc, OpSize: sz, Lock: d.lock, Dst: rm}, nil
		case 1:
			return Inst{Op: OpDec, OpSize: sz, Lock: d.lock, Dst: rm}, nil
		case 2:
			if op == 0xFE {
				return Inst{}, ErrUndefined
			}
			return Inst{Op: OpCall, OpSize: 8, Dst: rm}, nil
		case 4:
			if op == 0xFE {
				return Inst{}, ErrUndefined
			}
			return Inst{Op: OpJmp, OpSize: 8, Dst: rm}, nil
		case 6:
			if op == 0xFE {
				return Inst{}, ErrUndefined
			}
			return Inst{Op: OpPush, OpSize: 8, Dst: rm}, nil
		default:
			return Inst{}, ErrUndefined
		}
	case 0x0F:
		return d.opcode0F()
	}
	return Inst{}, fmt.Errorf("%w: 0x%02x", ErrUndefined, op)
}

func (d *decoder) opcode0F() (Inst, error) {
	op, err := d.u8()
	if err != nil {
		return Inst{}, err
	}
	size := d.opSize()

	// SSE scalar double subset (F2 mandatory prefix).
	if d.repF2 {
		return d.sseF2(op)
	}

	switch {
	case op >= 0x40 && op <= 0x4F:
		reg, rm, err := d.modRM(false, false)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpCmovcc, Cond: Cond(op - 0x40), OpSize: size, Dst: RegOp(Reg(reg)), Src: rm}, nil
	case op >= 0x80 && op <= 0x8F:
		disp, err := d.s32()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpJcc, Cond: Cond(op - 0x80), OpSize: 8, Dst: ImmOp(disp)}, nil
	case op >= 0x90 && op <= 0x9F:
		_, rm, err := d.modRM(false, false)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpSetcc, Cond: Cond(op - 0x90), OpSize: 1, Dst: rm}, nil
	}

	switch op {
	case 0x01:
		b, err := d.peek()
		if err != nil {
			return Inst{}, err
		}
		if b == 0xC1 { // VMCALL: our paravirt hypercall
			d.pos++
			return Inst{Op: OpHypercall, OpSize: 8}, nil
		}
		reg, rm, err := d.modRM(false, false)
		if err != nil {
			return Inst{}, err
		}
		if reg&7 == 7 && rm.Kind == KindMem {
			return Inst{Op: OpInvlpg, OpSize: 8, Dst: rm}, nil
		}
		return Inst{}, ErrUndefined
	case 0x05:
		return Inst{Op: OpSyscall, OpSize: 8}, nil
	case 0x07:
		return Inst{Op: OpSysret, OpSize: 8}, nil
	case 0x20, 0x22:
		b, err := d.u8()
		if err != nil {
			return Inst{}, err
		}
		if b>>6 != 3 {
			return Inst{}, ErrUndefined
		}
		crn := int64((b >> 3) & 7)
		gpr := Reg(b&7 + d.rexBit(1))
		if op == 0x22 {
			return Inst{Op: OpMovToCR, OpSize: 8, Dst: ImmOp(crn), Src: RegOp(gpr)}, nil
		}
		return Inst{Op: OpMovFromCR, OpSize: 8, Dst: RegOp(gpr), Src: ImmOp(crn)}, nil
	case 0x31:
		return Inst{Op: OpRdtsc, OpSize: 8}, nil
	case 0x37:
		return Inst{Op: OpPtlcall, OpSize: 8}, nil
	case 0x6E: // 66 REX.W 0F 6E: MOVQ xmm, r/m64
		if !d.osize {
			return Inst{}, ErrUndefined
		}
		reg, rm, err := d.modRM(true, false)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpMovqXR, OpSize: 8, Dst: RegOp(XMM0 + Reg(reg)), Src: rm}, nil
	case 0x7E:
		if !d.osize {
			return Inst{}, ErrUndefined
		}
		reg, rm, err := d.modRM(true, false)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpMovqRX, OpSize: 8, Dst: rm, Src: RegOp(XMM0 + Reg(reg))}, nil
	case 0x2E:
		if !d.osize {
			return Inst{}, ErrUndefined
		}
		reg, rm, err := d.modRM(true, true)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpUcomisd, OpSize: 8, Dst: RegOp(XMM0 + Reg(reg)), Src: rm}, nil
	case 0xA2:
		return Inst{Op: OpCpuid, OpSize: 8}, nil
	case 0xAE:
		b, err := d.u8()
		if err != nil {
			return Inst{}, err
		}
		if b == 0xF0 {
			return Inst{Op: OpMfence, OpSize: 8}, nil
		}
		return Inst{}, ErrUndefined
	case 0xAF:
		reg, rm, err := d.modRM(false, false)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpImul, OpSize: size, Dst: RegOp(Reg(reg)), Src: rm}, nil
	case 0xB0, 0xB1:
		reg, rm, err := d.modRM(false, false)
		if err != nil {
			return Inst{}, err
		}
		sz := size
		if op == 0xB0 {
			sz = 1
		}
		return Inst{Op: OpCmpxchg, OpSize: sz, Lock: d.lock, Dst: rm, Src: RegOp(Reg(reg))}, nil
	case 0xB6, 0xB7, 0xBE, 0xBF:
		reg, rm, err := d.modRM(false, false)
		if err != nil {
			return Inst{}, err
		}
		mop := OpMovzx
		if op >= 0xBE {
			mop = OpMovsx
		}
		srcW := int64(1)
		if op == 0xB7 || op == 0xBF {
			srcW = 2
		}
		return Inst{Op: mop, OpSize: size, Dst: RegOp(Reg(reg)), Src: rm, Src2: ImmOp(srcW)}, nil
	case 0xC0, 0xC1:
		reg, rm, err := d.modRM(false, false)
		if err != nil {
			return Inst{}, err
		}
		sz := size
		if op == 0xC0 {
			sz = 1
		}
		return Inst{Op: OpXadd, OpSize: sz, Lock: d.lock, Dst: rm, Src: RegOp(Reg(reg))}, nil
	}
	return Inst{}, fmt.Errorf("%w: 0x0f 0x%02x", ErrUndefined, op)
}

// sseF2 decodes the F2-prefixed scalar double operations.
func (d *decoder) sseF2(op byte) (Inst, error) {
	switch op {
	case 0x10:
		reg, rm, err := d.modRM(true, true)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpMovsdLoad, OpSize: 8, Dst: RegOp(XMM0 + Reg(reg)), Src: rm}, nil
	case 0x11:
		reg, rm, err := d.modRM(true, true)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpMovsdStore, OpSize: 8, Dst: rm, Src: RegOp(XMM0 + Reg(reg))}, nil
	case 0x2A: // CVTSI2SD xmm, r/m64
		reg, rm, err := d.modRM(true, false)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpCvtsi2sd, OpSize: 8, Dst: RegOp(XMM0 + Reg(reg)), Src: rm}, nil
	case 0x2C: // CVTTSD2SI r64, xmm/m64
		reg, rm, err := d.modRM(false, true)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: OpCvttsd2si, OpSize: 8, Dst: RegOp(Reg(reg)), Src: rm}, nil
	case 0x58, 0x59, 0x5C, 0x5E:
		reg, rm, err := d.modRM(true, true)
		if err != nil {
			return Inst{}, err
		}
		var fop Op
		switch op {
		case 0x58:
			fop = OpAddsd
		case 0x59:
			fop = OpMulsd
		case 0x5C:
			fop = OpSubsd
		default:
			fop = OpDivsd
		}
		return Inst{Op: fop, OpSize: 8, Dst: RegOp(XMM0 + Reg(reg)), Src: rm}, nil
	}
	return Inst{}, fmt.Errorf("%w: f2 0x0f 0x%02x", ErrUndefined, op)
}
