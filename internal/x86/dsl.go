package x86

// Structured control-flow combinators over the assembler. Guest
// programs (the mini-kernel and the rsync workload) are written in Go
// functions that emit x86-64 code; these helpers keep that code
// readable while still producing ordinary branch instructions that the
// simulator's front end must predict like any compiler output.

// IfThen emits code so body runs only when cond held at the preceding
// comparison instruction.
func (a *Assembler) IfThen(cond Cond, body func()) {
	skip := a.NewLabel()
	a.Jcc(cond.Negate(), skip)
	body()
	a.Bind(skip)
}

// IfElse emits a two-armed conditional on cond.
func (a *Assembler) IfElse(cond Cond, then, els func()) {
	elseL := a.NewLabel()
	done := a.NewLabel()
	a.Jcc(cond.Negate(), elseL)
	then()
	a.Jmp(done)
	a.Bind(elseL)
	els()
	a.Bind(done)
}

// While emits a top-tested loop. cond emits the comparison and returns
// the condition under which the loop continues.
func (a *Assembler) While(cond func() Cond, body func()) {
	top := a.Mark()
	exit := a.NewLabel()
	c := cond()
	a.Jcc(c.Negate(), exit)
	body()
	a.Jmp(top)
	a.Bind(exit)
}

// DoWhile emits a bottom-tested loop: body runs at least once, then
// repeats while the condition returned by cond holds.
func (a *Assembler) DoWhile(body func(), cond func() Cond) {
	top := a.Mark()
	body()
	c := cond()
	a.Jcc(c, top)
}

// Forever emits an infinite loop around body; body may escape via
// labels of its own (e.g. a Ret or a bound exit label).
func (a *Assembler) Forever(body func()) {
	top := a.Mark()
	body()
	a.Jmp(top)
}

// CountedLoop emits a loop that runs body with counter register ctr
// taking values 0..n-1. The counter is clobbered; body must preserve it.
func (a *Assembler) CountedLoop(ctr Reg, n int64, body func()) {
	a.Mov(R(ctr), I(0))
	a.While(func() Cond {
		a.Cmp(R(ctr), I(n))
		return CondL
	}, func() {
		body()
		a.Inc(R(ctr))
	})
}

// Func binds a label at the current position and emits a function body;
// the body is responsible for its own Ret. Returns the entry label.
func (a *Assembler) Func(body func()) Label {
	entry := a.Mark()
	body()
	return entry
}
