// Package bpred implements the configurable branch prediction models
// described in the paper: bimodal and gshare direction predictors built
// from 2-bit saturating counters, a hybrid predictor with a meta
// chooser, a branch target buffer for indirect branches, and a return
// address stack with speculative checkpointing. The K8 configuration in
// Table 1 uses a 16K-entry gshare-like global-history predictor.
package bpred

import "fmt"

// Kind selects the direction predictor algorithm.
type Kind uint8

// Direction predictor kinds.
const (
	KindBimodal Kind = iota
	KindGshare
	KindHybrid
	KindStatic // always predict not-taken (ablation baseline)
)

// Config sets the predictor geometry.
type Config struct {
	Kind       Kind
	TableBits  uint // log2 of counter table entries
	HistBits   uint // global history length (gshare/hybrid)
	BTBEntries int
	BTBAssoc   int
	RASEntries int
}

// Validate checks the predictor geometry so bad CLI flags produce a
// usable message instead of a stack trace at construction time.
func (c Config) Validate() error {
	if c.TableBits > 28 {
		return fmt.Errorf("bpred: table bits %d too large (max 28)", c.TableBits)
	}
	if c.HistBits > 63 {
		return fmt.Errorf("bpred: history bits %d too large (max 63)", c.HistBits)
	}
	if c.BTBEntries <= 0 {
		return fmt.Errorf("bpred: BTB entries %d must be positive", c.BTBEntries)
	}
	assoc := c.BTBAssoc
	if assoc <= 0 {
		assoc = 1
	}
	if c.BTBEntries%assoc != 0 {
		return fmt.Errorf("bpred: BTB entries %d not a multiple of associativity %d", c.BTBEntries, assoc)
	}
	nsets := c.BTBEntries / assoc
	if nsets&(nsets-1) != 0 {
		return fmt.Errorf("bpred: BTB set count %d (entries %d / assoc %d) must be a power of two",
			nsets, c.BTBEntries, assoc)
	}
	if c.RASEntries < 0 {
		return fmt.Errorf("bpred: RAS entries %d must be non-negative", c.RASEntries)
	}
	return nil
}

// DefaultConfig is a modest hybrid predictor.
func DefaultConfig() Config {
	return Config{Kind: KindHybrid, TableBits: 12, HistBits: 12,
		BTBEntries: 1024, BTBAssoc: 4, RASEntries: 16}
}

// K8Config approximates the Athlon 64's 16K-entry global history
// (gshare-like) predictor used for the Table 1 experiment.
func K8Config() Config {
	return Config{Kind: KindGshare, TableBits: 14, HistBits: 12,
		BTBEntries: 2048, BTBAssoc: 4, RASEntries: 12}
}

// counterTable is a table of 2-bit saturating counters initialized to
// weakly not-taken.
type counterTable struct {
	ctr  []uint8
	mask uint64
}

func newCounterTable(bits uint) *counterTable {
	n := 1 << bits
	t := &counterTable{ctr: make([]uint8, n), mask: uint64(n - 1)}
	for i := range t.ctr {
		t.ctr[i] = 1
	}
	return t
}

func (t *counterTable) predict(idx uint64) bool { return t.ctr[idx&t.mask] >= 2 }

func (t *counterTable) update(idx uint64, taken bool) {
	c := &t.ctr[idx&t.mask]
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

// Predictor is the full branch prediction unit attached to one
// hardware thread's fetch stage.
type Predictor struct {
	cfg    Config
	bim    *counterTable
	gsh    *counterTable
	meta   *counterTable // chooser: >=2 means "use gshare"
	ghr    uint64
	ghrMsk uint64
	btb    *BTB
	ras    *RAS
}

// New builds a predictor from cfg.
func New(cfg Config) *Predictor {
	p := &Predictor{cfg: cfg, ghrMsk: (1 << cfg.HistBits) - 1}
	switch cfg.Kind {
	case KindBimodal:
		p.bim = newCounterTable(cfg.TableBits)
	case KindGshare:
		p.gsh = newCounterTable(cfg.TableBits)
	case KindHybrid:
		p.bim = newCounterTable(cfg.TableBits)
		p.gsh = newCounterTable(cfg.TableBits)
		p.meta = newCounterTable(cfg.TableBits)
	}
	if cfg.BTBEntries > 0 {
		p.btb = NewBTB(cfg.BTBEntries, cfg.BTBAssoc)
	}
	p.ras = NewRAS(cfg.RASEntries)
	return p
}

func (p *Predictor) gshareIndex(pc uint64) uint64 {
	return (pc >> 2) ^ (p.ghr & p.ghrMsk)
}

// PredictDirection predicts a conditional branch at pc and returns the
// prediction plus a recovery snapshot of the global history to restore
// on a misprediction.
func (p *Predictor) PredictDirection(pc uint64) (taken bool, snapshot uint64) {
	snapshot = p.ghr
	switch p.cfg.Kind {
	case KindBimodal:
		taken = p.bim.predict(pc >> 2)
	case KindGshare:
		taken = p.gsh.predict(p.gshareIndex(pc))
	case KindHybrid:
		if p.meta.predict(pc >> 2) {
			taken = p.gsh.predict(p.gshareIndex(pc))
		} else {
			taken = p.bim.predict(pc >> 2)
		}
	case KindStatic:
		taken = false
	}
	// Speculatively shift the prediction into the history.
	p.ghr = p.ghr<<1 | b2u(taken)
	return taken, snapshot
}

// Update trains the predictor with the resolved outcome of the branch
// at pc. snapshot is the value returned by PredictDirection, needed to
// reconstruct the history the prediction was made under.
func (p *Predictor) Update(pc uint64, taken bool, snapshot uint64) {
	switch p.cfg.Kind {
	case KindBimodal:
		p.bim.update(pc>>2, taken)
	case KindGshare:
		idx := (pc >> 2) ^ (snapshot & p.ghrMsk)
		p.gsh.update(idx, taken)
	case KindHybrid:
		gIdx := (pc >> 2) ^ (snapshot & p.ghrMsk)
		bCorrect := p.bim.predict(pc>>2) == taken
		gCorrect := p.gsh.predict(gIdx) == taken
		if bCorrect != gCorrect {
			p.meta.update(pc>>2, gCorrect)
		}
		p.bim.update(pc>>2, taken)
		p.gsh.update(gIdx, taken)
	}
}

// Recover restores the global history after a misprediction: the
// snapshot is from prediction time, and outcome is the actual
// direction, which is shifted back in.
func (p *Predictor) Recover(snapshot uint64, outcome bool) {
	p.ghr = snapshot<<1 | b2u(outcome)
}

// BTBLookup predicts the target of a taken or indirect branch.
func (p *Predictor) BTBLookup(pc uint64) (uint64, bool) {
	if p.btb == nil {
		return 0, false
	}
	return p.btb.Lookup(pc)
}

// BTBUpdate records the resolved target of a branch.
func (p *Predictor) BTBUpdate(pc, target uint64) {
	if p.btb != nil {
		p.btb.Update(pc, target)
	}
}

// RAS exposes the return address stack.
func (p *Predictor) RAS() *RAS { return p.ras }

// Scramble deterministically fills the direction-prediction state
// (counter tables and global history) from seed. It varies only
// microarchitectural timing — mispredictions recover to the committed
// path — so conformance fuzzing uses it to run the same program under
// different predictor warm-ups and assert the architectural trajectory
// is invariant. BTB and RAS are left cold: they hold code addresses,
// and seeding them with arbitrary targets would just fabricate
// speculation into unmapped memory.
func (p *Predictor) Scramble(seed int64) {
	x := uint64(seed)*0x9E3779B97F4A7C15 + 1
	next := func() uint64 {
		// splitmix64: cheap, full-period, stateless beyond x.
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for _, t := range []*counterTable{p.bim, p.gsh, p.meta} {
		if t == nil {
			continue
		}
		for i := range t.ctr {
			t.ctr[i] = uint8(next() & 3)
		}
	}
	p.ghr = next() & p.ghrMsk
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// BTB is a set-associative branch target buffer.
type BTB struct {
	sets    [][]btbWay
	setMask uint64
	stamp   uint64
}

type btbWay struct {
	tag    uint64
	target uint64
	valid  bool
	lru    uint64
}

// NewBTB builds a BTB with the given entries and associativity.
func NewBTB(entries, assoc int) *BTB {
	if assoc <= 0 {
		assoc = 1
	}
	nsets := entries / assoc
	if nsets <= 0 {
		nsets = 1
	}
	// Ill-formed geometries (see Config.Validate) round up to the next
	// power-of-two set count; validated configs never trigger this.
	for nsets&(nsets-1) != 0 {
		nsets++
	}
	b := &BTB{sets: make([][]btbWay, nsets), setMask: uint64(nsets - 1)}
	for i := range b.sets {
		b.sets[i] = make([]btbWay, assoc)
	}
	return b
}

// Lookup returns the predicted target for the branch at pc.
func (b *BTB) Lookup(pc uint64) (uint64, bool) {
	set := b.sets[(pc>>2)&b.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == pc {
			b.stamp++
			set[i].lru = b.stamp
			return set[i].target, true
		}
	}
	return 0, false
}

// Update installs or refreshes the target for the branch at pc.
func (b *BTB) Update(pc, target uint64) {
	set := b.sets[(pc>>2)&b.setMask]
	b.stamp++
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == pc {
			set[i].target = target
			set[i].lru = b.stamp
			return
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = btbWay{tag: pc, target: target, valid: true, lru: b.stamp}
}

// RAS is a circular return address stack with full-copy checkpointing
// for speculative recovery (small enough that copying is cheap).
type RAS struct {
	stack []uint64
	top   int
}

// NewRAS creates a return address stack of the given depth.
func NewRAS(entries int) *RAS {
	if entries <= 0 {
		entries = 1
	}
	return &RAS{stack: make([]uint64, entries)}
}

// Push records a return address at a call.
func (r *RAS) Push(ret uint64) {
	r.top = (r.top + 1) % len(r.stack)
	r.stack[r.top] = ret
}

// Pop predicts the target of a return.
func (r *RAS) Pop() uint64 {
	v := r.stack[r.top]
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	return v
}

// Snapshot captures the full RAS state for misspeculation recovery.
func (r *RAS) Snapshot() RASSnapshot {
	s := RASSnapshot{top: r.top, stack: make([]uint64, len(r.stack))}
	copy(s.stack, r.stack)
	return s
}

// Restore rewinds the RAS to a snapshot.
func (r *RAS) Restore(s RASSnapshot) {
	r.top = s.top
	copy(r.stack, s.stack)
}

// RASSnapshot is an opaque RAS checkpoint.
type RASSnapshot struct {
	top   int
	stack []uint64
}

// Audit checks the stack's structural bounds: the top pointer must
// index a live slot. Push/Pop keep it in range by construction, so a
// violation means the predictor state was corrupted in place.
func (r *RAS) Audit() error {
	if len(r.stack) == 0 {
		return fmt.Errorf("bpred: RAS has no storage")
	}
	if r.top < 0 || r.top >= len(r.stack) {
		return fmt.Errorf("bpred: RAS top %d out of bounds [0,%d)", r.top, len(r.stack))
	}
	return nil
}
