package bpred

import (
	"math/rand"
	"testing"
)

// train runs a (pc, outcome) trace through the predictor and returns
// the accuracy over the final quarter of the trace (after warmup).
func train(p *Predictor, trace func(i int) (pc uint64, taken bool), n int) float64 {
	correct, counted := 0, 0
	for i := 0; i < n; i++ {
		pc, actual := trace(i)
		pred, snap := p.PredictDirection(pc)
		if pred != actual {
			p.Recover(snap, actual)
		}
		p.Update(pc, actual, snap)
		if i >= n*3/4 {
			counted++
			if pred == actual {
				correct++
			}
		}
	}
	return float64(correct) / float64(counted)
}

func TestBimodalLearnsBias(t *testing.T) {
	p := New(Config{Kind: KindBimodal, TableBits: 10, RASEntries: 8})
	acc := train(p, func(i int) (uint64, bool) {
		// Two branches: one always taken, one always not.
		if i%2 == 0 {
			return 0x1004, true
		}
		return 0x2008, false
	}, 400)
	if acc < 0.99 {
		t.Fatalf("bimodal accuracy on biased branches = %v", acc)
	}
}

func TestBimodalHysteresis(t *testing.T) {
	p := New(Config{Kind: KindBimodal, TableBits: 10, RASEntries: 8})
	// Saturate taken.
	for i := 0; i < 10; i++ {
		_, snap := p.PredictDirection(0x1000)
		p.Update(0x1000, true, snap)
	}
	// One not-taken blip must not flip the prediction (2-bit counter).
	_, snap := p.PredictDirection(0x1000)
	p.Update(0x1000, false, snap)
	pred, snap := p.PredictDirection(0x1000)
	p.Update(0x1000, true, snap)
	if !pred {
		t.Fatal("single blip flipped a saturated 2-bit counter")
	}
}

func TestGshareLearnsPattern(t *testing.T) {
	p := New(Config{Kind: KindGshare, TableBits: 12, HistBits: 8, RASEntries: 8})
	// Period-3 pattern T T N, unlearnable by bimodal alone.
	pattern := []bool{true, true, false}
	acc := train(p, func(i int) (uint64, bool) {
		return 0x4000, pattern[i%3]
	}, 3000)
	if acc < 0.95 {
		t.Fatalf("gshare accuracy on TTN pattern = %v", acc)
	}
}

func TestBimodalCannotLearnPattern(t *testing.T) {
	p := New(Config{Kind: KindBimodal, TableBits: 12, RASEntries: 8})
	pattern := []bool{true, true, false}
	acc := train(p, func(i int) (uint64, bool) {
		return 0x4000, pattern[i%3]
	}, 3000)
	if acc > 0.9 {
		t.Fatalf("bimodal should not learn a period-3 pattern (acc=%v)", acc)
	}
}

func TestHybridBeatsComponentsOnMixedWorkload(t *testing.T) {
	// Workload: some branches patterned (favor gshare), some noisy but
	// biased (favor bimodal since pattern history is polluted).
	mk := func(kind Kind) float64 {
		p := New(Config{Kind: kind, TableBits: 12, HistBits: 10, RASEntries: 8})
		r := rand.New(rand.NewSource(5))
		pattern := []bool{true, false}
		return train(p, func(i int) (uint64, bool) {
			switch i % 3 {
			case 0:
				return 0x1000, pattern[(i/3)%2]
			case 1:
				return 0x2000, r.Float64() < 0.95
			default:
				return 0x3000, true
			}
		}, 6000)
	}
	hybrid := mk(KindHybrid)
	if hybrid < 0.85 {
		t.Fatalf("hybrid accuracy = %v", hybrid)
	}
}

func TestStaticPredictsNotTaken(t *testing.T) {
	p := New(Config{Kind: KindStatic, RASEntries: 4})
	taken, _ := p.PredictDirection(0x1234)
	if taken {
		t.Fatal("static predictor must predict not-taken")
	}
}

func TestRecoverRestoresHistory(t *testing.T) {
	p := New(Config{Kind: KindGshare, TableBits: 10, HistBits: 8, RASEntries: 4})
	// Make several predictions, then recover to the first snapshot.
	_, snap0 := p.PredictDirection(0x100)
	p.PredictDirection(0x200)
	p.PredictDirection(0x300)
	p.Recover(snap0, true)
	if p.ghr != snap0<<1|1 {
		t.Fatalf("ghr = %#x, want %#x", p.ghr, snap0<<1|1)
	}
}

func TestBTBBasics(t *testing.T) {
	b := NewBTB(64, 4)
	if _, ok := b.Lookup(0x1000); ok {
		t.Fatal("empty BTB should miss")
	}
	b.Update(0x1000, 0x2000)
	tgt, ok := b.Lookup(0x1000)
	if !ok || tgt != 0x2000 {
		t.Fatalf("lookup = %#x %v", tgt, ok)
	}
	b.Update(0x1000, 0x3000)
	tgt, _ = b.Lookup(0x1000)
	if tgt != 0x3000 {
		t.Fatalf("update in place = %#x", tgt)
	}
}

func TestBTBEviction(t *testing.T) {
	b := NewBTB(4, 4) // one set
	for i := uint64(0); i < 5; i++ {
		b.Update(0x1000+i*4, 0x9000+i)
	}
	hits := 0
	for i := uint64(0); i < 5; i++ {
		if _, ok := b.Lookup(0x1000 + i*4); ok {
			hits++
		}
	}
	if hits != 4 {
		t.Fatalf("4-way set should hold exactly 4 of 5: %d", hits)
	}
}

func TestRASMatchedCalls(t *testing.T) {
	r := NewRAS(16)
	addrs := []uint64{0x100, 0x200, 0x300, 0x400}
	for _, a := range addrs {
		r.Push(a)
	}
	for i := len(addrs) - 1; i >= 0; i-- {
		if got := r.Pop(); got != addrs[i] {
			t.Fatalf("pop = %#x, want %#x", got, addrs[i])
		}
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(4)
	for i := uint64(1); i <= 6; i++ {
		r.Push(i * 0x10)
	}
	// Deepest two entries were overwritten; the top four survive.
	want := []uint64{0x60, 0x50, 0x40, 0x30}
	for _, w := range want {
		if got := r.Pop(); got != w {
			t.Fatalf("pop = %#x, want %#x", got, w)
		}
	}
}

func TestRASSnapshotRestore(t *testing.T) {
	r := NewRAS(8)
	r.Push(0x111)
	r.Push(0x222)
	snap := r.Snapshot()
	r.Pop()
	r.Push(0x333)
	r.Push(0x444)
	r.Restore(snap)
	if got := r.Pop(); got != 0x222 {
		t.Fatalf("after restore pop = %#x, want 0x222", got)
	}
	if got := r.Pop(); got != 0x111 {
		t.Fatalf("after restore pop = %#x, want 0x111", got)
	}
}

func TestK8ConfigShape(t *testing.T) {
	cfg := K8Config()
	if cfg.Kind != KindGshare || cfg.TableBits != 14 {
		t.Fatalf("K8 config should be a 16K gshare: %+v", cfg)
	}
	p := New(cfg)
	// Smoke: it predicts and trains without panicking.
	_, snap := p.PredictDirection(0xFFFF800000001000)
	p.Update(0xFFFF800000001000, true, snap)
}
