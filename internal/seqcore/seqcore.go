// Package seqcore implements the in-order sequential core: a fast
// functional uop interpreter with no timing model. It serves three
// roles from the paper: the rapid-testing/microcode-debugging core, the
// reference half of co-simulation (PTLsim's "native mode" stands in for
// host execution, which a simulator written in Go cannot hand off to
// real silicon), and the execution engine behind the hardware-counter
// reference model.
package seqcore

import (
	"fmt"

	"ptlsim/internal/bbcache"
	"ptlsim/internal/decode"
	"ptlsim/internal/mem"
	"ptlsim/internal/stats"
	"ptlsim/internal/uops"
	"ptlsim/internal/vm"
)

// StepKind describes what a Step call did.
type StepKind int

// Step outcomes.
const (
	StepRan  StepKind = iota // executed at least one instruction
	StepIdle                 // VCPU halted with no pending event
)

// pendingStore is a store buffered until its instruction commits.
type pendingStore struct {
	va, pa uint64
	val    uint64
	size   uint8
}

// regUndo records a register overwrite for intra-instruction rollback.
type regUndo struct {
	reg uops.ArchReg
	old uint64
}

// Observer receives the architectural event stream of the functional
// core: the hardware-counter reference model (internal/k8) feeds these
// events through silicon-like cache/TLB/predictor structures to emulate
// what real performance counters would report.
type Observer interface {
	// OnInsn fires at each committed x86 instruction; uopCount is the
	// number of uops the instruction expanded to.
	OnInsn(rip uint64, kernel bool, uopCount int)
	// OnLoad/OnStore fire per data access with virtual and physical
	// addresses.
	OnLoad(va, pa uint64, size uint8)
	OnStore(va, pa uint64, size uint8)
	// OnBranch fires at each branch with its outcome.
	OnBranch(rip uint64, taken bool, target uint64, kind uops.BranchKind)
	// OnFetchBlock fires once per basic block entered, with the
	// physical address of its first byte.
	OnFetchBlock(rip, pa uint64)
	// OnAddressSpaceSwitch fires when CR3 changed (context switch):
	// untagged TLBs flush here, exactly as on real silicon.
	OnAddressSpaceSwitch(cr3 uint64)
}

// Core is one sequential functional core bound to a VCPU context.
type Core struct {
	Ctx *vm.Context
	Sys vm.System

	// Obs, when non-nil, receives the event stream.
	Obs    Observer
	obsCR3 uint64

	bb *bbcache.Cache

	// Per-instruction atomicity buffers.
	stores []pendingStore
	undo   []regUndo

	// MaxInsnsPerStep bounds one Step call (0 = one basic block).
	MaxInsnsPerStep int

	// Statistics.
	insns, uopsC, branches, takenBranches *stats.Counter
	loads, storesC, smcFlushes            *stats.Counter
}

// New creates a sequential core. The basic block cache may be shared
// with other cores of the same domain.
func New(ctx *vm.Context, sys vm.System, bb *bbcache.Cache, tree *stats.Tree, prefix string) *Core {
	return &Core{
		Ctx: ctx, Sys: sys, bb: bb,
		insns:         tree.Counter(prefix + ".insns"),
		uopsC:         tree.Counter(prefix + ".uops"),
		branches:      tree.Counter(prefix + ".branches"),
		takenBranches: tree.Counter(prefix + ".taken_branches"),
		loads:         tree.Counter(prefix + ".loads"),
		storesC:       tree.Counter(prefix + ".stores"),
		smcFlushes:    tree.Counter(prefix + ".smc_flushes"),
	}
}

// Insns returns the number of x86 instructions committed by this core.
func (c *Core) Insns() int64 { return c.insns.Value() }

// Uops returns the number of uops executed.
func (c *Core) Uops() int64 { return c.uopsC.Value() }

func (c *Core) readReg(r uops.ArchReg) uint64 {
	if r == uops.RegZero {
		return 0
	}
	return c.Ctx.Regs[r]
}

func (c *Core) writeReg(r uops.ArchReg, v uint64) {
	if r == uops.RegZero {
		return
	}
	c.undo = append(c.undo, regUndo{reg: r, old: c.Ctx.Regs[r]})
	c.Ctx.Regs[r] = v
}

// rollback undoes the current instruction's register writes and
// discards its buffered stores.
func (c *Core) rollback() {
	for i := len(c.undo) - 1; i >= 0; i-- {
		c.Ctx.Regs[c.undo[i].reg] = c.undo[i].old
	}
	c.undo = c.undo[:0]
	c.stores = c.stores[:0]
}

// commitStores applies the instruction's buffered stores and performs
// the SMC store-side check.
func (c *Core) commitStores() {
	for _, s := range c.stores {
		// The page(s) were translated at execute time; write physically.
		first := mem.PageSize - s.pa&mem.PageMask
		if first >= uint64(s.size) {
			_ = c.Ctx.M.PM.Write(s.pa, s.val, s.size)
		} else {
			f := uint8(first)
			_ = c.Ctx.M.PM.Write(s.pa, s.val&uops.Mask(f), f)
			// Page-crossing store: retranslate the second half (same
			// translation that succeeded at execute time).
			pa2, fault := c.Ctx.Translate(s.va+first, true, false)
			if fault == uops.FaultNone {
				_ = c.Ctx.M.PM.Write(pa2, s.val>>(8*f), s.size-f)
			}
		}
		mfn := s.pa >> mem.PageShift
		if c.bb != nil && c.bb.IsCodePage(mfn) {
			c.bb.InvalidatePage(mfn)
			c.smcFlushes.Inc()
		}
	}
	c.stores = c.stores[:0]
	c.undo = c.undo[:0]
}

// fetchBB obtains the translated basic block at the context's RIP.
func (c *Core) fetchBB() (*decode.BasicBlock, uops.Fault) {
	ctx := c.Ctx
	pa, fault := ctx.Translate(ctx.RIP, false, true)
	if fault != uops.FaultNone {
		return nil, fault
	}
	if c.Obs != nil {
		c.Obs.OnFetchBlock(ctx.RIP, pa)
	}
	key := bbcache.Key{RIP: ctx.RIP, MFN: pa >> mem.PageShift, Kernel: ctx.Kernel}
	if c.bb != nil {
		if bb, ok := c.bb.Lookup(key); ok {
			return bb, uops.FaultNone
		}
	}
	bb, fault := decode.BuildBB(ctx.FetchCode, ctx.RIP)
	if fault != uops.FaultNone {
		return nil, fault
	}
	if c.bb != nil {
		// Track the ending page for page-crossing blocks.
		if endPA, f := ctx.Translate(ctx.RIP+bb.X86Len-1, false, true); f == uops.FaultNone {
			if endMFN := endPA >> mem.PageShift; endMFN != key.MFN {
				key.MFN2 = endMFN
			}
		}
		c.bb.Insert(key, bb)
	}
	return bb, uops.FaultNone
}

// deliverFault routes a uop fault through the guest's trap entry.
func (c *Core) deliverFault(f uops.Fault, rip uint64) error {
	c.rollback()
	c.Ctx.RIP = rip
	vec, errInfo := vm.FaultVector(c.Ctx, f)
	return c.Ctx.DeliverException(vec, errInfo, rip)
}

// Step executes up to one basic block (or MaxInsnsPerStep x86
// instructions, if set). Event upcalls are delivered at instruction
// boundaries before the block starts.
func (c *Core) Step() (StepKind, error) {
	ctx := c.Ctx
	if !ctx.Running {
		if c.Sys.EventPending(ctx) && ctx.IF() {
			ctx.Running = true
		} else {
			return StepIdle, nil
		}
	}
	if ctx.IF() && c.Sys.EventPending(ctx) {
		if err := ctx.DeliverEvent(); err != nil {
			return StepRan, err
		}
	}

	if c.Obs != nil && ctx.CR3 != c.obsCR3 {
		c.obsCR3 = ctx.CR3
		c.Obs.OnAddressSpaceSwitch(ctx.CR3)
	}

	bb, fault := c.fetchBB()
	if fault != uops.FaultNone {
		if err := c.deliverFault(fault, ctx.RIP); err != nil {
			return StepRan, err
		}
		return StepRan, nil
	}

	insnsThisStep := 0
	i := 0
	for i < len(bb.Uops) {
		redirect, consumed, err := c.execInsn(bb, i)
		if err != nil {
			return StepRan, err
		}
		// Pseudo-instructions (the REP entry check, NoCount) must not
		// end a bounded step: they leave RIP unchanged, so breaking
		// here would re-execute them forever.
		if !bb.Uops[i+consumed-1].NoCount {
			insnsThisStep++
		}
		if redirect {
			return StepRan, nil
		}
		i += consumed
		if c.MaxInsnsPerStep > 0 && insnsThisStep >= c.MaxInsnsPerStep {
			if i < len(bb.Uops) {
				ctx.RIP = bb.Uops[i].RIP
			} else {
				ctx.RIP = bb.FallThrough()
			}
			return StepRan, nil
		}
	}
	ctx.RIP = bb.FallThrough()
	return StepRan, nil
}

// execInsn executes one x86 instruction's uop group starting at index
// start. It returns redirect=true when control left the basic block
// (branch taken elsewhere, assist, or exception).
func (c *Core) execInsn(bb *decode.BasicBlock, start int) (redirect bool, consumed int, err error) {
	ctx := c.Ctx
	n := 0
	for start+n < len(bb.Uops) {
		u := &bb.Uops[start+n]
		n++

		if u.Op == uops.OpAssist {
			fault := vm.ExecAssist(ctx, u, c.Sys, vm.NopCoreHooks{})
			c.uopsC.Inc()
			if fault != uops.FaultNone {
				if err := c.deliverFault(fault, u.RIP); err != nil {
					return true, n, err
				}
				return true, n, nil
			}
			if !u.NoCount {
				c.insns.Inc()
				if c.Obs != nil {
					c.Obs.OnInsn(u.RIP, ctx.Kernel, 1)
				}
			}
			return true, n, nil
		}

		a := c.readReg(u.Ra)
		var b uint64
		if u.BImm {
			b = uint64(u.Imm)
		} else {
			b = c.readReg(u.Rb)
		}
		cv := c.readReg(u.Rc)

		res, flagsOut, fault := uops.Exec(u, a, b, cv)
		if fault != uops.FaultNone {
			if err := c.deliverFault(fault, u.RIP); err != nil {
				return true, n, err
			}
			return true, n, nil
		}

		switch {
		case u.IsLoad():
			va := res
			val, f := c.loadValue(va, u.MemSize)
			if f != uops.FaultNone {
				if err := c.deliverFault(f, u.RIP); err != nil {
					return true, n, err
				}
				return true, n, nil
			}
			c.writeReg(u.Rd, val)
			c.loads.Inc()
			if c.Obs != nil {
				if pa, f := ctx.Translate(va, false, false); f == uops.FaultNone {
					c.Obs.OnLoad(va, pa, u.MemSize)
				}
			}
		case u.IsStore():
			va := res
			pa, f := ctx.Translate(va, true, false)
			if f != uops.FaultNone {
				if err := c.deliverFault(f, u.RIP); err != nil {
					return true, n, err
				}
				return true, n, nil
			}
			// Probe a page-crossing store's second page now so the
			// whole instruction faults before any byte is written.
			if first := mem.PageSize - va&mem.PageMask; first < uint64(u.MemSize) {
				if _, f := ctx.Translate(va+first, true, false); f != uops.FaultNone {
					if err := c.deliverFault(f, u.RIP); err != nil {
						return true, n, err
					}
					return true, n, nil
				}
			}
			c.stores = append(c.stores, pendingStore{va: va, pa: pa, val: cv & uops.Mask(u.MemSize), size: u.MemSize})
			c.storesC.Inc()
			if c.Obs != nil {
				c.Obs.OnStore(va, pa, u.MemSize)
			}
		case u.IsBranch():
			c.branches.Inc()
			if res != u.RIPNot {
				c.takenBranches.Inc()
			}
			if c.Obs != nil {
				c.Obs.OnBranch(u.RIP, res != u.RIPNot, res, u.Branch)
			}
			if u.SetFlags != 0 {
				c.writeReg(uops.RegFlags, flagsOut)
			}
			// Branches end the instruction.
			if !u.EOM {
				return true, n, fmt.Errorf("seqcore: branch uop not at EOM at rip %#x", u.RIP)
			}
			c.commitStores()
			c.uopsC.Add(int64(n))
			if !u.NoCount {
				c.insns.Inc()
				if c.Obs != nil {
					c.Obs.OnInsn(u.RIP, ctx.Kernel, n)
				}
			}
			next := bb.FallThrough()
			if start+n < len(bb.Uops) {
				next = bb.Uops[start+n].RIP
			}
			ctx.RIP = res
			if res != next {
				return true, n, nil
			}
			return false, n, nil
		default:
			c.writeReg(u.Rd, res)
			if u.SetFlags != 0 {
				c.writeReg(uops.RegFlags, flagsOut)
			}
		}

		if u.EOM {
			c.commitStores()
			c.uopsC.Add(int64(n))
			if !u.NoCount {
				c.insns.Inc()
				if c.Obs != nil {
					c.Obs.OnInsn(u.RIP, ctx.Kernel, n)
				}
			}
			if start+n < len(bb.Uops) {
				ctx.RIP = bb.Uops[start+n].RIP
			} else {
				ctx.RIP = bb.FallThrough()
			}
			return false, n, nil
		}
	}
	return true, n, fmt.Errorf("seqcore: basic block at %#x ended without EOM", bb.RIP)
}

// loadValue reads memory for a load uop, forwarding from the current
// instruction's buffered stores on an exact address/size match.
func (c *Core) loadValue(va uint64, size uint8) (uint64, uops.Fault) {
	for i := len(c.stores) - 1; i >= 0; i-- {
		if c.stores[i].va == va && c.stores[i].size == size {
			return c.stores[i].val, uops.FaultNone
		}
	}
	return c.Ctx.ReadVirt(va, size)
}
