// Package seqcore implements the in-order sequential core: a fast
// functional uop interpreter with no timing model. It serves three
// roles from the paper: the rapid-testing/microcode-debugging core, the
// reference half of co-simulation (PTLsim's "native mode" stands in for
// host execution, which a simulator written in Go cannot hand off to
// real silicon), and the execution engine behind the hardware-counter
// reference model.
package seqcore

import (
	"errors"
	"fmt"

	"ptlsim/internal/bbcache"
	"ptlsim/internal/decode"
	"ptlsim/internal/evlog"
	"ptlsim/internal/mem"
	"ptlsim/internal/stats"
	"ptlsim/internal/uops"
	"ptlsim/internal/vm"
)

// StepKind describes what a Step call did.
type StepKind int

// Step outcomes.
const (
	StepRan  StepKind = iota // executed at least one instruction
	StepIdle                 // VCPU halted with no pending event
)

// pendingStore is a store buffered until its instruction commits.
type pendingStore struct {
	va, pa uint64
	val    uint64
	size   uint8
}

// regUndo records a register overwrite for intra-instruction rollback.
type regUndo struct {
	reg uops.ArchReg
	old uint64
}

// ShadowStore is one store a phantom-mode core would have performed:
// buffered for comparison against the primary engine's committed store
// traffic instead of being written to physical memory.
type ShadowStore struct {
	VA, PA uint64
	Val    uint64
	Size   uint8
}

// errShadowFault is the sentinel a phantom-mode core returns instead of
// delivering an exception through the guest trap entry; the faulting
// vector is left in Core.shadowFault for the caller.
var errShadowFault = fmt.Errorf("seqcore: shadow fault")

// Observer receives the architectural event stream of the functional
// core: the hardware-counter reference model (internal/k8) feeds these
// events through silicon-like cache/TLB/predictor structures to emulate
// what real performance counters would report.
type Observer interface {
	// OnInsn fires at each committed x86 instruction; uopCount is the
	// number of uops the instruction expanded to.
	OnInsn(rip uint64, kernel bool, uopCount int)
	// OnLoad/OnStore fire per data access with virtual and physical
	// addresses.
	OnLoad(va, pa uint64, size uint8)
	OnStore(va, pa uint64, size uint8)
	// OnBranch fires at each branch with its outcome.
	OnBranch(rip uint64, taken bool, target uint64, kind uops.BranchKind)
	// OnFetchBlock fires once per basic block entered, with the
	// physical address of its first byte.
	OnFetchBlock(rip, pa uint64)
	// OnAddressSpaceSwitch fires when CR3 changed (context switch):
	// untagged TLBs flush here, exactly as on real silicon.
	OnAddressSpaceSwitch(cr3 uint64)
}

// Core is one sequential functional core bound to a VCPU context.
type Core struct {
	Ctx *vm.Context
	Sys vm.System

	// Obs, when non-nil, receives the event stream.
	Obs    Observer
	obsCR3 uint64

	bb *bbcache.Cache

	// Per-instruction atomicity buffers.
	stores []pendingStore
	undo   []regUndo

	// MaxInsnsPerStep bounds one Step call (0 = one basic block).
	MaxInsnsPerStep int

	// phantom puts the core in shadow-oracle mode (see NewShadow):
	// stores are buffered in shadowStores instead of written to physical
	// memory, faults are returned to the StepShadow caller instead of
	// delivered through the guest trap entry, and microcode assists are
	// refused (the primary engine never routes an assist through the
	// clean-commit path a shadow mirrors).
	phantom      bool
	shadowStores []ShadowStore
	shadowFault  uops.Fault
	// shadowBB/shadowIdx carry the intra-block position between
	// StepShadow calls: consecutive uop groups can share one RIP (a REP
	// instruction is a NoCount iteration-check group followed by a body
	// group, both at the REP's address), so the resume point cannot be
	// recovered from RIP alone.
	shadowBB  *decode.BasicBlock
	shadowIdx int

	// Statistics.
	insns, uopsC, branches, takenBranches *stats.Counter
	loads, storesC, smcFlushes            *stats.Counter

	// ev, when non-nil, receives a commit event per instruction. The
	// functional core has no cycle clock, so the committed-instruction
	// count stands in for the cycle. Shadow/phantom cores never get a
	// log attached — their event stream would duplicate the primary's.
	ev     *evlog.Log
	evCore uint8
	evSeq  uint64
}

// New creates a sequential core. The basic block cache may be shared
// with other cores of the same domain.
func New(ctx *vm.Context, sys vm.System, bb *bbcache.Cache, tree *stats.Tree, prefix string) *Core {
	return &Core{
		Ctx: ctx, Sys: sys, bb: bb,
		insns:         tree.Counter(prefix + ".insns"),
		uopsC:         tree.Counter(prefix + ".uops"),
		branches:      tree.Counter(prefix + ".branches"),
		takenBranches: tree.Counter(prefix + ".taken_branches"),
		loads:         tree.Counter(prefix + ".loads"),
		storesC:       tree.Counter(prefix + ".stores"),
		smcFlushes:    tree.Counter(prefix + ".smc_flushes"),
	}
}

// SetEventLog attaches a pipeline event log recording one commit event
// per committed instruction (nil detaches). coreID tags the events.
func (c *Core) SetEventLog(l *evlog.Log, coreID uint8) {
	c.ev = l
	c.evCore = coreID
}

// evCommit records one committed-instruction event (callers gate on
// c.ev != nil so the disabled path costs a single branch).
func (c *Core) evCommit(rip uint64, op uops.Op) {
	c.evSeq++
	c.ev.Record(evlog.Event{Cycle: uint64(c.insns.Value()), Seq: c.evSeq,
		RIP: rip, Op: uint16(op), Stage: evlog.StageCommit,
		Flags: evlog.FlagSeqCore, Core: c.evCore})
}

// NewShadow creates a phantom-mode core: a functional shadow that
// executes against ctx but never mutates guest memory (stores are
// buffered), never delivers exceptions or events, and refuses assists.
// The lockstep commit oracle (internal/selfcheck) drives one of these
// per hardware thread. The basic block cache and stats tree must be
// private to the shadow so the primary engine's statistics stay
// bit-identical whether or not a shadow is attached.
func NewShadow(ctx *vm.Context, sys vm.System, bb *bbcache.Cache, tree *stats.Tree, prefix string) *Core {
	c := New(ctx, sys, bb, tree, prefix)
	c.phantom = true
	return c
}

// StepShadow executes one x86 instruction group (SOM..EOM) at the
// context's current RIP, advancing RIP past it. noCount names the kind
// of group the primary is committing: a NoCount pseudo-group (a REP
// iteration check) or a counted instruction. The distinction matters
// because both kinds can live at the same RIP and the primary does not
// commit them strictly alternately — the check's not-taken successor
// is the body group at its own address, so a mispredicted check is
// re-decoded and re-commits, possibly several times in a row — and the
// shadow realigns on the flag rather than executing the body a commit
// early. StepShadow returns the group's buffered stores (valid until
// the next call) and any architectural fault the group raised; faults
// are reported, not delivered. Only valid on phantom cores.
func (c *Core) StepShadow(noCount bool) ([]ShadowStore, uops.Fault, error) {
	if !c.phantom {
		return nil, uops.FaultNone, fmt.Errorf("seqcore: StepShadow on a non-phantom core")
	}
	c.shadowStores = c.shadowStores[:0]
	c.shadowFault = uops.FaultNone
	// Resume mid-block when the held position still matches RIP (the
	// only way to advance from a REP check group to its body group);
	// otherwise fetch fresh. A primary re-committing the check while
	// the shadow holds the body (the misprediction case above) also
	// refetches: the check group is always first in a block fetched at
	// the shared RIP.
	bb, start := c.shadowBB, c.shadowIdx
	if bb == nil || start >= len(bb.Uops) || bb.Uops[start].RIP != c.Ctx.RIP ||
		(noCount && !bb.Uops[start].NoCount) {
		var fault uops.Fault
		bb, fault = c.fetchBB()
		if fault != uops.FaultNone {
			return nil, fault, nil
		}
		start = 0
	}
	c.shadowBB, c.shadowIdx = nil, 0
	for {
		matched := bb.Uops[start].NoCount == noCount
		redirect, consumed, err := c.execInsn(bb, start)
		if err != nil {
			if errors.Is(err, errShadowFault) {
				return nil, c.shadowFault, nil
			}
			return nil, uops.FaultNone, err
		}
		start += consumed
		if !redirect && start < len(bb.Uops) {
			c.shadowBB, c.shadowIdx = bb, start
		}
		if matched || redirect || start >= len(bb.Uops) {
			return c.shadowStores, uops.FaultNone, nil
		}
		// A stateless NoCount pseudo-group sat in front of the counted
		// group the primary is committing (a freshly fetched REP block
		// whose check falls through): execute on into the next group.
	}
}

// ResetShadow discards the held intra-block position; the oracle calls
// it whenever the primary re-architects state outside the clean-commit
// path (resync), since the shadow's next group then comes from a fresh
// fetch at the adopted RIP.
func (c *Core) ResetShadow() {
	c.shadowBB, c.shadowIdx = nil, 0
}

// Insns returns the number of x86 instructions committed by this core.
func (c *Core) Insns() int64 { return c.insns.Value() }

// Uops returns the number of uops executed.
func (c *Core) Uops() int64 { return c.uopsC.Value() }

func (c *Core) readReg(r uops.ArchReg) uint64 {
	if r == uops.RegZero {
		return 0
	}
	return c.Ctx.Regs[r]
}

func (c *Core) writeReg(r uops.ArchReg, v uint64) {
	if r == uops.RegZero {
		return
	}
	c.undo = append(c.undo, regUndo{reg: r, old: c.Ctx.Regs[r]})
	c.Ctx.Regs[r] = v
}

// rollback undoes the current instruction's register writes and
// discards its buffered stores.
func (c *Core) rollback() {
	for i := len(c.undo) - 1; i >= 0; i-- {
		c.Ctx.Regs[c.undo[i].reg] = c.undo[i].old
	}
	c.undo = c.undo[:0]
	c.stores = c.stores[:0]
}

// commitStores applies the instruction's buffered stores and performs
// the SMC store-side check.
func (c *Core) commitStores() {
	if c.phantom {
		// Phantom mode: the primary engine performs the real writes at
		// its own commit; here the stores only move to the comparison
		// buffer. The shadow's private decode cache must still drop
		// blocks on written code pages or it would keep replaying stale
		// translations after self-modifying code.
		for _, s := range c.stores {
			if c.bb != nil {
				if mfn := s.pa >> mem.PageShift; c.bb.IsCodePage(mfn) {
					c.bb.InvalidatePage(mfn)
					c.smcFlushes.Inc()
				}
				if first := mem.PageSize - s.va&mem.PageMask; first < uint64(s.size) {
					if pa2, fault := c.Ctx.Translate(s.va+first, true, false); fault == uops.FaultNone {
						if mfn2 := pa2 >> mem.PageShift; c.bb.IsCodePage(mfn2) {
							c.bb.InvalidatePage(mfn2)
							c.smcFlushes.Inc()
						}
					}
				}
			}
			c.shadowStores = append(c.shadowStores, ShadowStore{VA: s.va, PA: s.pa, Val: s.val, Size: s.size})
		}
		c.stores = c.stores[:0]
		c.undo = c.undo[:0]
		return
	}
	for _, s := range c.stores {
		// The page(s) were translated at execute time; write physically.
		first := mem.PageSize - s.pa&mem.PageMask
		if first >= uint64(s.size) {
			_ = c.Ctx.M.PM.Write(s.pa, s.val, s.size)
		} else {
			f := uint8(first)
			_ = c.Ctx.M.PM.Write(s.pa, s.val&uops.Mask(f), f)
			// Page-crossing store: retranslate the second half (same
			// translation that succeeded at execute time).
			pa2, fault := c.Ctx.Translate(s.va+first, true, false)
			if fault == uops.FaultNone {
				_ = c.Ctx.M.PM.Write(pa2, s.val>>(8*f), s.size-f)
			}
		}
		mfn := s.pa >> mem.PageShift
		if c.bb != nil && c.bb.IsCodePage(mfn) {
			c.bb.InvalidatePage(mfn)
			c.smcFlushes.Inc()
		}
	}
	c.stores = c.stores[:0]
	c.undo = c.undo[:0]
}

// fetchBB obtains the translated basic block at the context's RIP.
func (c *Core) fetchBB() (*decode.BasicBlock, uops.Fault) {
	ctx := c.Ctx
	pa, fault := ctx.Translate(ctx.RIP, false, true)
	if fault != uops.FaultNone {
		return nil, fault
	}
	if c.Obs != nil {
		c.Obs.OnFetchBlock(ctx.RIP, pa)
	}
	key := bbcache.Key{RIP: ctx.RIP, MFN: pa >> mem.PageShift, Kernel: ctx.Kernel}
	if c.bb != nil {
		if bb, ok := c.bb.Lookup(key); ok {
			return bb, uops.FaultNone
		}
	}
	bb, fault := decode.BuildBB(ctx.FetchCode, ctx.RIP)
	if fault != uops.FaultNone {
		return nil, fault
	}
	if c.bb != nil {
		// Track the ending page for page-crossing blocks.
		if endPA, f := ctx.Translate(ctx.RIP+bb.X86Len-1, false, true); f == uops.FaultNone {
			if endMFN := endPA >> mem.PageShift; endMFN != key.MFN {
				key.MFN2 = endMFN
			}
		}
		c.bb.Insert(key, bb)
	}
	return bb, uops.FaultNone
}

// deliverFault routes a uop fault through the guest's trap entry. A
// phantom core instead rolls back and surfaces the fault to its
// StepShadow caller: delivery would write a bounce frame into guest
// memory, which only the primary engine may do.
func (c *Core) deliverFault(f uops.Fault, rip uint64) error {
	c.rollback()
	if c.phantom {
		c.Ctx.RIP = rip
		c.shadowFault = f
		return errShadowFault
	}
	c.Ctx.RIP = rip
	vec, errInfo := vm.FaultVector(c.Ctx, f)
	return c.Ctx.DeliverException(vec, errInfo, rip)
}

// Step executes up to one basic block (or MaxInsnsPerStep x86
// instructions, if set). Event upcalls are delivered at instruction
// boundaries before the block starts.
func (c *Core) Step() (StepKind, error) {
	ctx := c.Ctx
	if !ctx.Running {
		if c.Sys.EventPending(ctx) && ctx.IF() {
			ctx.Running = true
		} else {
			return StepIdle, nil
		}
	}
	if ctx.IF() && c.Sys.EventPending(ctx) {
		if err := ctx.DeliverEvent(); err != nil {
			return StepRan, err
		}
	}

	if c.Obs != nil && ctx.CR3 != c.obsCR3 {
		c.obsCR3 = ctx.CR3
		c.Obs.OnAddressSpaceSwitch(ctx.CR3)
	}

	bb, fault := c.fetchBB()
	if fault != uops.FaultNone {
		if err := c.deliverFault(fault, ctx.RIP); err != nil {
			return StepRan, err
		}
		return StepRan, nil
	}

	insnsThisStep := 0
	i := 0
	for i < len(bb.Uops) {
		redirect, consumed, err := c.execInsn(bb, i)
		if err != nil {
			return StepRan, err
		}
		// Pseudo-instructions (the REP entry check, NoCount) must not
		// end a bounded step: they leave RIP unchanged, so breaking
		// here would re-execute them forever.
		if !bb.Uops[i+consumed-1].NoCount {
			insnsThisStep++
		}
		if redirect {
			return StepRan, nil
		}
		i += consumed
		if c.MaxInsnsPerStep > 0 && insnsThisStep >= c.MaxInsnsPerStep {
			if i < len(bb.Uops) {
				ctx.RIP = bb.Uops[i].RIP
			} else {
				ctx.RIP = bb.FallThrough()
			}
			return StepRan, nil
		}
	}
	ctx.RIP = bb.FallThrough()
	return StepRan, nil
}

// execInsn executes one x86 instruction's uop group starting at index
// start. It returns redirect=true when control left the basic block
// (branch taken elsewhere, assist, or exception).
func (c *Core) execInsn(bb *decode.BasicBlock, start int) (redirect bool, consumed int, err error) {
	ctx := c.Ctx
	n := 0
	for start+n < len(bb.Uops) {
		u := &bb.Uops[start+n]
		n++

		if u.Op == uops.OpAssist {
			if c.phantom {
				// Assists mutate domain state (hypercalls, CR writes)
				// and the primary engine commits them outside the
				// clean-commit path a shadow mirrors; a shadow reaching
				// one means its decode stream diverged from the primary.
				return true, n, fmt.Errorf("seqcore: shadow reached microcode assist at rip %#x", u.RIP)
			}
			fault := vm.ExecAssist(ctx, u, c.Sys, vm.NopCoreHooks{})
			c.uopsC.Inc()
			if fault != uops.FaultNone {
				if err := c.deliverFault(fault, u.RIP); err != nil {
					return true, n, err
				}
				return true, n, nil
			}
			if !u.NoCount {
				c.insns.Inc()
				if c.Obs != nil {
					c.Obs.OnInsn(u.RIP, ctx.Kernel, 1)
				}
				if c.ev != nil {
					c.evCommit(u.RIP, u.Op)
				}
			}
			return true, n, nil
		}

		a := c.readReg(u.Ra)
		var b uint64
		if u.BImm {
			b = uint64(u.Imm)
		} else {
			b = c.readReg(u.Rb)
		}
		cv := c.readReg(u.Rc)

		res, flagsOut, fault := uops.Exec(u, a, b, cv)
		if fault != uops.FaultNone {
			if err := c.deliverFault(fault, u.RIP); err != nil {
				return true, n, err
			}
			return true, n, nil
		}

		switch {
		case u.IsLoad():
			va := res
			val, f := c.loadValue(va, u.MemSize)
			if f != uops.FaultNone {
				if err := c.deliverFault(f, u.RIP); err != nil {
					return true, n, err
				}
				return true, n, nil
			}
			c.writeReg(u.Rd, val)
			c.loads.Inc()
			if c.Obs != nil {
				if pa, f := ctx.Translate(va, false, false); f == uops.FaultNone {
					c.Obs.OnLoad(va, pa, u.MemSize)
				}
			}
		case u.IsStore():
			va := res
			pa, f := ctx.Translate(va, true, false)
			if f != uops.FaultNone {
				if err := c.deliverFault(f, u.RIP); err != nil {
					return true, n, err
				}
				return true, n, nil
			}
			// Probe a page-crossing store's second page now so the
			// whole instruction faults before any byte is written.
			if first := mem.PageSize - va&mem.PageMask; first < uint64(u.MemSize) {
				if _, f := ctx.Translate(va+first, true, false); f != uops.FaultNone {
					if err := c.deliverFault(f, u.RIP); err != nil {
						return true, n, err
					}
					return true, n, nil
				}
			}
			c.stores = append(c.stores, pendingStore{va: va, pa: pa, val: cv & uops.Mask(u.MemSize), size: u.MemSize})
			c.storesC.Inc()
			if c.Obs != nil {
				c.Obs.OnStore(va, pa, u.MemSize)
			}
		case u.IsBranch():
			c.branches.Inc()
			if res != u.RIPNot {
				c.takenBranches.Inc()
			}
			if c.Obs != nil {
				c.Obs.OnBranch(u.RIP, res != u.RIPNot, res, u.Branch)
			}
			if u.SetFlags != 0 {
				c.writeReg(uops.RegFlags, flagsOut)
			}
			// Branches end the instruction.
			if !u.EOM {
				return true, n, fmt.Errorf("seqcore: branch uop not at EOM at rip %#x", u.RIP)
			}
			c.commitStores()
			c.uopsC.Add(int64(n))
			if !u.NoCount {
				c.insns.Inc()
				if c.Obs != nil {
					c.Obs.OnInsn(u.RIP, ctx.Kernel, n)
				}
				if c.ev != nil {
					c.evCommit(u.RIP, u.Op)
				}
			}
			next := bb.FallThrough()
			if start+n < len(bb.Uops) {
				next = bb.Uops[start+n].RIP
			}
			ctx.RIP = res
			if res != next {
				return true, n, nil
			}
			return false, n, nil
		default:
			c.writeReg(u.Rd, res)
			if u.SetFlags != 0 {
				c.writeReg(uops.RegFlags, flagsOut)
			}
		}

		if u.EOM {
			c.commitStores()
			c.uopsC.Add(int64(n))
			if !u.NoCount {
				c.insns.Inc()
				if c.Obs != nil {
					c.Obs.OnInsn(u.RIP, ctx.Kernel, n)
				}
				if c.ev != nil {
					c.evCommit(u.RIP, u.Op)
				}
			}
			if start+n < len(bb.Uops) {
				ctx.RIP = bb.Uops[start+n].RIP
			} else {
				ctx.RIP = bb.FallThrough()
			}
			return false, n, nil
		}
	}
	return true, n, fmt.Errorf("seqcore: basic block at %#x ended without EOM", bb.RIP)
}

// loadValue reads memory for a load uop, forwarding from the current
// instruction's buffered stores on an exact address/size match.
func (c *Core) loadValue(va uint64, size uint8) (uint64, uops.Fault) {
	for i := len(c.stores) - 1; i >= 0; i-- {
		if c.stores[i].va == va && c.stores[i].size == size {
			return c.stores[i].val, uops.FaultNone
		}
	}
	return c.Ctx.ReadVirt(va, size)
}
