package seqcore

import (
	"testing"

	"ptlsim/internal/bbcache"
	"ptlsim/internal/mem"
	"ptlsim/internal/stats"
	"ptlsim/internal/uops"
	"ptlsim/internal/vm"
	"ptlsim/internal/x86"
)

// testSys is a minimal vm.System: no events, hypercall writes a marker,
// ptlcall sets a stop flag.
type testSys struct {
	stopped    bool
	hypercalls int
	tsc        uint64
}

func (s *testSys) Hypercall(c *vm.Context) uops.Fault {
	s.hypercalls++
	c.Regs[uops.RegRAX] = 0x1234
	return uops.FaultNone
}
func (s *testSys) Ptlcall(c *vm.Context)            { s.stopped = true }
func (s *testSys) ReadTSC(c *vm.Context) uint64     { s.tsc += 100; return s.tsc }
func (s *testSys) Cpuid(c *vm.Context)              { c.Regs[uops.RegRAX] = 0xC0DE }
func (s *testSys) EventPending(c *vm.Context) bool  { return false }

// env builds a guest with code at codeVA, a stack, and a scratch data
// page, all user-accessible.
type env struct {
	pm   *mem.PhysMem
	as   *mem.AddressSpace
	ctx  *vm.Context
	sys  *testSys
	core *Core
	tree *stats.Tree
}

const (
	codeVA  = 0x400000
	dataVA  = 0x600000
	stackVA = 0x7F0000 // stack occupies the page below stackTop
	stackTop = stackVA + 0x1000
)

func newEnv(t *testing.T, code []byte, kernel bool) *env {
	t.Helper()
	pm := mem.NewPhysMem()
	as := mem.NewAddressSpace(pm)
	flags := mem.PTEWritable | mem.PTEUser
	// Map enough pages for code.
	for off := uint64(0); off < uint64(len(code))+mem.PageSize; off += mem.PageSize {
		if err := as.Map(codeVA+off, pm.AllocPage(), flags); err != nil {
			t.Fatal(err)
		}
	}
	for _, va := range []uint64{dataVA, dataVA + 0x1000, stackVA} {
		if err := as.Map(va, pm.AllocPage(), flags); err != nil {
			t.Fatal(err)
		}
	}
	m := &vm.Machine{PM: pm}
	ctx := vm.NewContext(m, 0)
	ctx.CR3 = as.CR3()
	ctx.Kernel = kernel
	ctx.RIP = codeVA
	ctx.Regs[uops.RegRSP] = stackTop
	if f := ctx.WriteVirtBytes(codeVA, code); f != uops.FaultNone {
		t.Fatalf("loading code: %v", f)
	}
	sys := &testSys{}
	tree := stats.NewTree()
	bbc := bbcache.New(1024, tree, "bb")
	core := New(ctx, sys, bbc, tree, "seq")
	return &env{pm: pm, as: as, ctx: ctx, sys: sys, core: core, tree: tree}
}

// run steps until ptlcall stops the program or maxSteps elapse.
func (e *env) run(t *testing.T, maxSteps int) {
	t.Helper()
	for i := 0; i < maxSteps; i++ {
		if e.sys.stopped {
			return
		}
		if _, err := e.core.Step(); err != nil {
			t.Fatalf("step %d: %v (rip=%#x)", i, err, e.ctx.RIP)
		}
	}
	if !e.sys.stopped {
		t.Fatalf("program did not finish in %d steps (rip=%#x)", maxSteps, e.ctx.RIP)
	}
}

// asm assembles a program at codeVA; the program should end with Ptlcall.
func asm(t *testing.T, build func(a *x86.Assembler)) []byte {
	t.Helper()
	a := x86.NewAssembler(codeVA)
	build(a)
	code, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return code
}

func TestArithLoop(t *testing.T) {
	// sum 1..100 into RAX.
	code := asm(t, func(a *x86.Assembler) {
		a.Mov(x86.R(x86.RAX), x86.I(0))
		a.Mov(x86.R(x86.RCX), x86.I(100))
		a.While(func() x86.Cond {
			a.Cmp(x86.R(x86.RCX), x86.I(0))
			return x86.CondNE
		}, func() {
			a.Add(x86.R(x86.RAX), x86.R(x86.RCX))
			a.Dec(x86.R(x86.RCX))
		})
		a.Ptlcall()
	})
	e := newEnv(t, code, false)
	e.run(t, 2000)
	if got := e.ctx.Regs[uops.RegRAX]; got != 5050 {
		t.Fatalf("sum = %d, want 5050", got)
	}
	if e.core.Insns() < 300 {
		t.Fatalf("instruction count %d seems too low", e.core.Insns())
	}
}

func TestMemoryOps(t *testing.T) {
	code := asm(t, func(a *x86.Assembler) {
		a.Mov(x86.R(x86.RDI), x86.I(dataVA))
		a.Mov(x86.R(x86.RAX), x86.I(0x1122334455667788))
		a.Mov(x86.M(x86.RDI, 0), x86.R(x86.RAX))
		a.Mov(x86.R(x86.RBX), x86.M(x86.RDI, 0))
		// Subword ops.
		a.Movb(x86.M(x86.RDI, 8), x86.I(0x7F))
		a.Movzx(x86.RCX, x86.M(x86.RDI, 8), 1)
		a.Movb(x86.M(x86.RDI, 9), x86.I(-1))
		a.Movsx(x86.RDX, x86.M(x86.RDI, 9), 1)
		// Indexed addressing.
		a.Mov(x86.R(x86.RSI), x86.I(2))
		a.Movl(x86.MIdx(x86.RDI, x86.RSI, 4, 16), x86.I(0xABCD))
		a.Movl(x86.R(x86.R8), x86.MIdx(x86.RDI, x86.RSI, 4, 16))
		a.Ptlcall()
	})
	e := newEnv(t, code, false)
	e.run(t, 100)
	if e.ctx.Regs[uops.RegRBX] != 0x1122334455667788 {
		t.Fatalf("rbx = %#x", e.ctx.Regs[uops.RegRBX])
	}
	if e.ctx.Regs[uops.RegRCX] != 0x7F {
		t.Fatalf("movzx = %#x", e.ctx.Regs[uops.RegRCX])
	}
	if e.ctx.Regs[uops.RegRDX] != ^uint64(0) {
		t.Fatalf("movsx = %#x", e.ctx.Regs[uops.RegRDX])
	}
	if e.ctx.Regs[uops.RegR8] != 0xABCD {
		t.Fatalf("indexed = %#x", e.ctx.Regs[uops.RegR8])
	}
}

func TestSubwordRegisterSemantics(t *testing.T) {
	code := asm(t, func(a *x86.Assembler) {
		a.Mov(x86.R(x86.RAX), x86.I(0x1122334455667788))
		a.Movb(x86.R(x86.RAX), x86.I(0x99)) // merges low byte
		a.Mov(x86.R(x86.RBX), x86.I(0x1122334455667788))
		a.Movl(x86.R(x86.RBX), x86.I(0x42)) // zeroes upper half
		a.Ptlcall()
	})
	e := newEnv(t, code, false)
	e.run(t, 100)
	if e.ctx.Regs[uops.RegRAX] != 0x1122334455667799 {
		t.Fatalf("8-bit write = %#x", e.ctx.Regs[uops.RegRAX])
	}
	if e.ctx.Regs[uops.RegRBX] != 0x42 {
		t.Fatalf("32-bit write = %#x", e.ctx.Regs[uops.RegRBX])
	}
}

func TestCallRetRecursion(t *testing.T) {
	// fib(12) via naive recursion.
	code := asm(t, func(a *x86.Assembler) {
		fib := a.NewLabel()
		start := a.NewLabel()
		a.Jmp(start)
		a.Bind(fib) // arg in RDI, result in RAX
		base := a.NewLabel()
		rec := a.NewLabel()
		a.Cmp(x86.R(x86.RDI), x86.I(2))
		a.Jcc(x86.CondL, base)
		a.Jmp(rec)
		a.Bind(base)
		a.Mov(x86.R(x86.RAX), x86.R(x86.RDI))
		a.Ret()
		a.Bind(rec)
		a.Push(x86.R(x86.RDI))
		a.Sub(x86.R(x86.RDI), x86.I(1))
		a.Call(fib)
		a.Pop(x86.R(x86.RDI))
		a.Push(x86.R(x86.RAX))
		a.Sub(x86.R(x86.RDI), x86.I(2))
		a.Call(fib)
		a.Pop(x86.R(x86.RBX))
		a.Add(x86.R(x86.RAX), x86.R(x86.RBX))
		a.Ret()
		a.Bind(start)
		a.Mov(x86.R(x86.RDI), x86.I(12))
		a.Call(fib)
		a.Ptlcall()
	})
	e := newEnv(t, code, false)
	e.run(t, 100000)
	if e.ctx.Regs[uops.RegRAX] != 144 {
		t.Fatalf("fib(12) = %d, want 144", e.ctx.Regs[uops.RegRAX])
	}
}

func TestMulDiv(t *testing.T) {
	code := asm(t, func(a *x86.Assembler) {
		a.Mov(x86.R(x86.RAX), x86.I(1234567))
		a.Mov(x86.R(x86.RBX), x86.I(7654321))
		a.Mul(x86.R(x86.RBX)) // RDX:RAX = product
		a.Mov(x86.R(x86.R8), x86.R(x86.RAX))
		a.Mov(x86.R(x86.R9), x86.R(x86.RDX))
		// Divide back.
		a.Div(x86.R(x86.RBX))
		a.Mov(x86.R(x86.R10), x86.R(x86.RAX)) // quotient
		a.Mov(x86.R(x86.R11), x86.R(x86.RDX)) // remainder
		// Signed: -100 / 7.
		a.Mov(x86.R(x86.RAX), x86.I(-100))
		a.Cqo()
		a.Mov(x86.R(x86.RCX), x86.I(7))
		a.Idiv(x86.R(x86.RCX))
		a.Mov(x86.R(x86.R12), x86.R(x86.RAX))
		a.Mov(x86.R(x86.R13), x86.R(x86.RDX))
		// imul 2-op and 3-op.
		a.Mov(x86.R(x86.RSI), x86.I(-6))
		a.Imul3(x86.RSI, x86.R(x86.RSI), 7)
		a.Imul3(x86.R14, x86.R(x86.RSI), -2)
		a.Ptlcall()
	})
	e := newEnv(t, code, false)
	e.run(t, 100)
	product := uint64(1234567) * uint64(7654321)
	if e.ctx.Regs[uops.RegR8] != product || e.ctx.Regs[uops.RegR9] != 0 {
		t.Fatalf("mul = %#x:%#x", e.ctx.Regs[uops.RegR9], e.ctx.Regs[uops.RegR8])
	}
	if e.ctx.Regs[uops.RegR10] != 1234567 || e.ctx.Regs[uops.RegR11] != 0 {
		t.Fatalf("div = %d rem %d", e.ctx.Regs[uops.RegR10], e.ctx.Regs[uops.RegR11])
	}
	if int64(e.ctx.Regs[uops.RegR12]) != -14 || int64(e.ctx.Regs[uops.RegR13]) != -2 {
		t.Fatalf("idiv: q=%d r=%d", int64(e.ctx.Regs[uops.RegR12]), int64(e.ctx.Regs[uops.RegR13]))
	}
	if int64(e.ctx.Regs[uops.RegRSI]) != -42 || int64(e.ctx.Regs[uops.RegR14]) != 84 {
		t.Fatalf("imul: %d %d", int64(e.ctx.Regs[uops.RegRSI]), int64(e.ctx.Regs[uops.RegR14]))
	}
}

func TestRepMovs(t *testing.T) {
	code := asm(t, func(a *x86.Assembler) {
		// Fill source with a pattern using rep stosq, then copy with
		// rep movsb, then verify a byte.
		a.Mov(x86.R(x86.RDI), x86.I(dataVA))
		a.Mov(x86.R(x86.RAX), x86.I(0x0807060504030201))
		a.Mov(x86.R(x86.RCX), x86.I(16)) // 128 bytes
		a.RepStos(8)
		a.Mov(x86.R(x86.RSI), x86.I(dataVA))
		a.Mov(x86.R(x86.RDI), x86.I(dataVA+0x1000))
		a.Mov(x86.R(x86.RCX), x86.I(128))
		a.RepMovs(1)
		// RCX must be 0 afterwards; RSI/RDI advanced.
		a.Mov(x86.R(x86.R8), x86.R(x86.RCX))
		a.Mov(x86.R(x86.R9), x86.R(x86.RSI))
		a.Mov(x86.R(x86.R10), x86.R(x86.RDI))
		// rep with rcx=0 must be a no-op.
		a.Mov(x86.R(x86.RCX), x86.I(0))
		a.Mov(x86.R(x86.RSI), x86.I(dataVA))
		a.Mov(x86.R(x86.RDI), x86.I(dataVA+0x800))
		a.RepMovs(8)
		a.Movzx(x86.R11, x86.MAbs(dataVA+0x800), 1) // untouched (zero page)
		a.Movzx(x86.R12, x86.MAbs(dataVA+0x1000+77), 1)
		a.Ptlcall()
	})
	e := newEnv(t, code, false)
	e.run(t, 3000)
	if e.ctx.Regs[uops.RegR8] != 0 {
		t.Fatalf("rcx after rep = %d", e.ctx.Regs[uops.RegR8])
	}
	if e.ctx.Regs[uops.RegR9] != dataVA+128 || e.ctx.Regs[uops.RegR10] != dataVA+0x1000+128 {
		t.Fatalf("rsi/rdi = %#x/%#x", e.ctx.Regs[uops.RegR9], e.ctx.Regs[uops.RegR10])
	}
	if e.ctx.Regs[uops.RegR11] != 0 {
		t.Fatal("rep with rcx=0 wrote memory")
	}
	// byte 77 = pattern[77%8] = 0x06.
	if e.ctx.Regs[uops.RegR12] != 0x06 {
		t.Fatalf("copied byte = %#x, want 0x06", e.ctx.Regs[uops.RegR12])
	}
}

func TestAtomicOps(t *testing.T) {
	code := asm(t, func(a *x86.Assembler) {
		a.Mov(x86.R(x86.RDI), x86.I(dataVA))
		a.Mov(x86.M(x86.RDI, 0), x86.I(10))
		a.Mov(x86.R(x86.RBX), x86.I(5))
		a.LockXadd(x86.M(x86.RDI, 0), x86.R(x86.RBX)) // mem=15, rbx=10
		// cmpxchg success: rax==mem.
		a.Mov(x86.R(x86.RAX), x86.I(15))
		a.Mov(x86.R(x86.RCX), x86.I(99))
		a.LockCmpxchg(x86.M(x86.RDI, 0), x86.R(x86.RCX)) // mem=99, ZF=1
		a.Setcc(x86.CondE, x86.R(x86.R8))
		// cmpxchg failure: rax(15) != mem(99) -> rax=99.
		a.Mov(x86.R(x86.RDX), x86.I(111))
		a.LockCmpxchg(x86.M(x86.RDI, 0), x86.R(x86.RDX))
		a.Setcc(x86.CondE, x86.R(x86.R9))
		a.Mov(x86.R(x86.R10), x86.R(x86.RAX)) // should be 99
		// lock inc/dec/add.
		a.LockInc(x86.M(x86.RDI, 0))  // 100
		a.LockAdd(x86.M(x86.RDI, 0), x86.I(10)) // 110
		a.LockDec(x86.M(x86.RDI, 0))  // 109
		a.Mov(x86.R(x86.R11), x86.M(x86.RDI, 0))
		// xchg.
		a.Mov(x86.R(x86.R12), x86.I(0xAA))
		a.Xchg(x86.M(x86.RDI, 0), x86.R(x86.R12)) // mem=0xAA, r12=109
		a.Mov(x86.R(x86.R13), x86.R(x86.RBX))
		a.Ptlcall()
	})
	e := newEnv(t, code, false)
	e.run(t, 200)
	r := func(reg uops.ArchReg) uint64 { return e.ctx.Regs[reg] }
	if r(uops.RegR13) != 10 {
		t.Fatalf("xadd old value = %d", r(uops.RegR13))
	}
	if r(uops.RegR8)&1 != 1 {
		t.Fatal("cmpxchg success should set ZF")
	}
	if r(uops.RegR9)&1 != 0 {
		t.Fatal("cmpxchg failure should clear ZF")
	}
	if r(uops.RegR10) != 99 {
		t.Fatalf("cmpxchg failure rax = %d, want 99", r(uops.RegR10))
	}
	if r(uops.RegR11) != 109 {
		t.Fatalf("lock inc/add/dec result = %d", r(uops.RegR11))
	}
	if r(uops.RegR12) != 109 {
		t.Fatalf("xchg old = %d", r(uops.RegR12))
	}
}

func TestFlagsAndCmov(t *testing.T) {
	code := asm(t, func(a *x86.Assembler) {
		a.Mov(x86.R(x86.RAX), x86.I(5))
		a.Mov(x86.R(x86.RBX), x86.I(9))
		a.Cmp(x86.R(x86.RAX), x86.R(x86.RBX))
		a.Cmovcc(x86.CondL, x86.RCX, x86.R(x86.RBX)) // rcx = 9
		a.Setcc(x86.CondGE, x86.R(x86.RDX))          // 0
		a.Setcc(x86.CondL, x86.R(x86.RSI))           // 1
		// adc chain: 0xFFFFFFFFFFFFFFFF + 1 with carry propagation.
		a.Mov(x86.R(x86.R8), x86.I(-1))
		a.Mov(x86.R(x86.R9), x86.I(0))
		a.Add(x86.R(x86.R8), x86.I(1)) // CF=1
		a.Adc(x86.R(x86.R9), x86.I(0)) // R9 = 1
		a.Ptlcall()
	})
	e := newEnv(t, code, false)
	e.run(t, 100)
	if e.ctx.Regs[uops.RegRCX] != 9 {
		t.Fatalf("cmovl = %d", e.ctx.Regs[uops.RegRCX])
	}
	if e.ctx.Regs[uops.RegRDX]&1 != 0 || e.ctx.Regs[uops.RegRSI]&1 != 1 {
		t.Fatalf("setcc: %d %d", e.ctx.Regs[uops.RegRDX], e.ctx.Regs[uops.RegRSI])
	}
	if e.ctx.Regs[uops.RegR8] != 0 || e.ctx.Regs[uops.RegR9] != 1 {
		t.Fatalf("adc chain: %#x %#x", e.ctx.Regs[uops.RegR8], e.ctx.Regs[uops.RegR9])
	}
}

func TestFPOps(t *testing.T) {
	code := asm(t, func(a *x86.Assembler) {
		a.Mov(x86.R(x86.RAX), x86.I(7))
		a.Cvtsi2sd(x86.XMM0, x86.R(x86.RAX))
		a.Mov(x86.R(x86.RBX), x86.I(2))
		a.Cvtsi2sd(x86.XMM1, x86.R(x86.RBX))
		a.Divsd(x86.XMM0, x86.R(x86.XMM1)) // 3.5
		a.Mulsd(x86.XMM0, x86.R(x86.XMM1)) // 7.0
		a.Addsd(x86.XMM0, x86.R(x86.XMM1)) // 9.0
		a.Subsd(x86.XMM0, x86.R(x86.XMM1)) // 7.0
		a.Cvttsd2si(x86.RCX, x86.R(x86.XMM0))
		// Comparison.
		a.Ucomisd(x86.XMM0, x86.R(x86.XMM1))
		a.Setcc(x86.CondA, x86.R(x86.RDX)) // 7 > 2 -> 1
		// Memory round trip.
		a.Mov(x86.R(x86.RDI), x86.I(dataVA))
		a.MovsdStore(x86.M(x86.RDI, 0), x86.XMM0)
		a.Movsd(x86.XMM2, x86.M(x86.RDI, 0))
		a.Cvttsd2si(x86.RSI, x86.R(x86.XMM2))
		a.Ptlcall()
	})
	e := newEnv(t, code, false)
	e.run(t, 100)
	if e.ctx.Regs[uops.RegRCX] != 7 || e.ctx.Regs[uops.RegRSI] != 7 {
		t.Fatalf("fp results: %d %d", e.ctx.Regs[uops.RegRCX], e.ctx.Regs[uops.RegRSI])
	}
	if e.ctx.Regs[uops.RegRDX]&1 != 1 {
		t.Fatal("ucomisd 7 > 2 should set A")
	}
}

func TestHypercallFromKernel(t *testing.T) {
	code := asm(t, func(a *x86.Assembler) {
		a.Mov(x86.R(x86.RAX), x86.I(1))
		a.Hypercall()
		a.Ptlcall()
	})
	e := newEnv(t, code, true)
	e.run(t, 10)
	if e.sys.hypercalls != 1 || e.ctx.Regs[uops.RegRAX] != 0x1234 {
		t.Fatalf("hypercall: count=%d rax=%#x", e.sys.hypercalls, e.ctx.Regs[uops.RegRAX])
	}
}

func TestRdtscAndCpuid(t *testing.T) {
	code := asm(t, func(a *x86.Assembler) {
		a.Rdtsc()
		a.Mov(x86.R(x86.R8), x86.R(x86.RAX))
		a.Cpuid()
		a.Ptlcall()
	})
	e := newEnv(t, code, false)
	e.run(t, 10)
	if e.ctx.Regs[uops.RegR8] != 100 {
		t.Fatalf("rdtsc = %d", e.ctx.Regs[uops.RegR8])
	}
	if e.ctx.Regs[uops.RegRAX] != 0xC0DE {
		t.Fatalf("cpuid = %#x", e.ctx.Regs[uops.RegRAX])
	}
}

// Exceptions: a user-mode page fault enters the kernel trap entry with
// the right frame, and iretq resumes.
func TestPageFaultDelivery(t *testing.T) {
	const handlerVA = codeVA + 0x800
	code := asm(t, func(a *x86.Assembler) {
		// User program: read unmapped memory, then after the handler
		// fixes RIP... handler will skip the instruction by adjusting
		// saved RIP. Finally ptlcall.
		a.Mov(x86.R(x86.RBX), x86.I(0xDEAD0000))
		faulting := a.Mark()
		_ = faulting
		a.Mov(x86.R(x86.RCX), x86.M(x86.RBX, 0)) // 4-byte modrm+disp... length computed below
		a.Mov(x86.R(x86.R9), x86.I(0x5E7))
		a.Ptlcall()
	})
	// Kernel trap handler at handlerVA: record vector and error, skip
	// the faulting instruction (it is 3 bytes: 48 8B 0B), iretq.
	h := x86.NewAssembler(handlerVA)
	h.Pop(x86.R(x86.R10))               // vector
	h.Pop(x86.R(x86.R11))               // error info (faulting VA)
	h.Add(x86.M(x86.RSP, 0), x86.I(3))  // saved RIP += 3
	h.Iretq()
	handler, err := h.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	e := newEnv(t, code, false)
	if f := e.ctx.WriteVirtBytes(handlerVA, handler); f != uops.FaultNone {
		t.Fatal(f)
	}
	e.ctx.TrapEntry = handlerVA
	e.ctx.KernelRSP = stackTop - 256 // separate kernel stack area
	e.run(t, 100)
	if e.ctx.Regs[uops.RegR10] != vm.VecPF {
		t.Fatalf("vector = %d, want #PF", e.ctx.Regs[uops.RegR10])
	}
	if e.ctx.Regs[uops.RegR11] != 0xDEAD0000 {
		t.Fatalf("fault address = %#x", e.ctx.Regs[uops.RegR11])
	}
	if e.ctx.Regs[uops.RegR9] != 0x5E7 {
		t.Fatal("execution did not resume after iretq")
	}
	if e.ctx.Kernel {
		t.Fatal("should be back in user mode")
	}
}

func TestSyscallSysret(t *testing.T) {
	const kernelVA = codeVA + 0x800
	code := asm(t, func(a *x86.Assembler) {
		a.Mov(x86.R(x86.RDI), x86.I(41))
		a.Syscall()
		a.Mov(x86.R(x86.R9), x86.R(x86.RAX)) // syscall result
		a.Ptlcall()
	})
	k := x86.NewAssembler(kernelVA)
	// Kernel syscall entry: result = rdi+1, return via popping the
	// bounce frame: restore user RSP from frame, then sysret.
	k.Mov(x86.R(x86.RAX), x86.R(x86.RDI))
	k.Add(x86.R(x86.RAX), x86.I(1))
	k.Mov(x86.R(x86.RSP), x86.M(x86.RSP, 24)) // frame: RIP,mode,flags,RSP
	k.Sysret()
	kcode, err := k.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	e := newEnv(t, code, false)
	if f := e.ctx.WriteVirtBytes(kernelVA, kcode); f != uops.FaultNone {
		t.Fatal(f)
	}
	e.ctx.SyscallEntry = kernelVA
	e.ctx.KernelRSP = stackTop - 512
	e.run(t, 100)
	if e.ctx.Regs[uops.RegR9] != 42 {
		t.Fatalf("syscall result = %d, want 42", e.ctx.Regs[uops.RegR9])
	}
	if e.ctx.Kernel {
		t.Fatal("sysret should return to user mode")
	}
}

func TestSelfModifyingCode(t *testing.T) {
	// The program overwrites an instruction ahead of it (mov rbx, 1
	// becomes mov rbx, 2 by patching the immediate) and executes it;
	// the basic block cache must be invalidated.
	code := asm(t, func(a *x86.Assembler) {
		patch := a.NewLabel()
		target := a.NewLabel()
		// Run the target once so it is cached.
		a.Call(target)
		// Patch the immediate byte (offset: movabs is 10 bytes: 48 BB imm64).
		a.LeaLabel(x86.RDI, target)
		a.Movb(x86.M(x86.RDI, 2), x86.I(2))
		a.Call(target)
		a.Ptlcall()
		a.Bind(patch)
		a.Bind(target)
		a.Emit(x86.Inst{Op: x86.OpMov, OpSize: 8, Dst: x86.R(x86.RBX), Src: x86.I(0x100000001)}) // forces movabs
		a.Ret()
	})
	e := newEnv(t, code, false)
	e.run(t, 100)
	// After patching byte 2 (imm LSB) from 1 to 2: value 0x100000002.
	if e.ctx.Regs[uops.RegRBX] != 0x100000002 {
		t.Fatalf("rbx = %#x; SMC not honored", e.ctx.Regs[uops.RegRBX])
	}
	if e.tree.Lookup("seq.smc_flushes").Value() == 0 {
		t.Fatal("SMC flush not counted")
	}
}

func TestDivideFaultDelivery(t *testing.T) {
	const handlerVA = codeVA + 0x800
	code := asm(t, func(a *x86.Assembler) {
		a.Mov(x86.R(x86.RAX), x86.I(1))
		a.Cqo()
		a.Mov(x86.R(x86.RCX), x86.I(0))
		a.Idiv(x86.R(x86.RCX)) // #DE
		a.Ptlcall()
	})
	h := x86.NewAssembler(handlerVA)
	h.Pop(x86.R(x86.R10)) // vector
	h.Pop(x86.R(x86.R11))
	// Terminate via ptlcall from kernel.
	h.Ptlcall()
	handler, err := h.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	e := newEnv(t, code, false)
	if f := e.ctx.WriteVirtBytes(handlerVA, handler); f != uops.FaultNone {
		t.Fatal(f)
	}
	e.ctx.TrapEntry = handlerVA
	e.ctx.KernelRSP = stackTop - 256
	e.run(t, 100)
	if e.ctx.Regs[uops.RegR10] != vm.VecDivide {
		t.Fatalf("vector = %d, want #DE", e.ctx.Regs[uops.RegR10])
	}
	if !e.ctx.Kernel {
		t.Fatal("handler should run in kernel mode")
	}
}

func TestUndefinedOpcodeDelivery(t *testing.T) {
	const handlerVA = codeVA + 0x800
	// 0F 0B (UD2, not implemented) then ptlcall (never reached).
	code := []byte{0x0F, 0x0B, 0x0F, 0x37}
	h := x86.NewAssembler(handlerVA)
	h.Pop(x86.R(x86.R10))
	h.Pop(x86.R(x86.R11))
	h.Ptlcall()
	handler, err := h.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	e := newEnv(t, code, false)
	if f := e.ctx.WriteVirtBytes(handlerVA, handler); f != uops.FaultNone {
		t.Fatal(f)
	}
	e.ctx.TrapEntry = handlerVA
	e.ctx.KernelRSP = stackTop - 256
	e.run(t, 100)
	if e.ctx.Regs[uops.RegR10] != vm.VecUD {
		t.Fatalf("vector = %d, want #UD", e.ctx.Regs[uops.RegR10])
	}
}

func TestHltRequiresKernel(t *testing.T) {
	const handlerVA = codeVA + 0x800
	code := asm(t, func(a *x86.Assembler) {
		a.Hlt() // #GP from user mode
		a.Ptlcall()
	})
	h := x86.NewAssembler(handlerVA)
	h.Pop(x86.R(x86.R10))
	h.Ptlcall()
	handler, _ := h.Bytes()
	e := newEnv(t, code, false)
	e.ctx.WriteVirtBytes(handlerVA, handler)
	e.ctx.TrapEntry = handlerVA
	e.ctx.KernelRSP = stackTop - 256
	e.run(t, 100)
	if e.ctx.Regs[uops.RegR10] != vm.VecGP {
		t.Fatalf("vector = %d, want #GP", e.ctx.Regs[uops.RegR10])
	}
}

func TestShiftAndRotate(t *testing.T) {
	code := asm(t, func(a *x86.Assembler) {
		a.Mov(x86.R(x86.RAX), x86.I(1))
		a.Shl(x86.R(x86.RAX), x86.I(12))
		a.Mov(x86.R(x86.RBX), x86.I(-8))
		a.Sar(x86.R(x86.RBX), x86.I(2)) // -2
		a.Mov(x86.R(x86.RCX), x86.I(3))
		a.Mov(x86.R(x86.RDX), x86.I(0x10))
		a.Shr(x86.R(x86.RDX), x86.R(x86.RCX)) // by CL: 2
		a.Mov(x86.R(x86.RSI), x86.I(-0x7FFFFFFFFFFFFFFF)) // 0x8000000000000001
		a.Rol(x86.R(x86.RSI), x86.I(1)) // 0x3
		a.Ptlcall()
	})
	e := newEnv(t, code, false)
	e.run(t, 100)
	if e.ctx.Regs[uops.RegRAX] != 1<<12 {
		t.Fatalf("shl = %#x", e.ctx.Regs[uops.RegRAX])
	}
	if int64(e.ctx.Regs[uops.RegRBX]) != -2 {
		t.Fatalf("sar = %d", int64(e.ctx.Regs[uops.RegRBX]))
	}
	if e.ctx.Regs[uops.RegRDX] != 2 {
		t.Fatalf("shr cl = %d", e.ctx.Regs[uops.RegRDX])
	}
	if e.ctx.Regs[uops.RegRSI] != 3 {
		t.Fatalf("rol = %#x", e.ctx.Regs[uops.RegRSI])
	}
}

func TestPageCrossingAccess(t *testing.T) {
	code := asm(t, func(a *x86.Assembler) {
		// Write an 8-byte value straddling the dataVA/dataVA+0x1000
		// boundary (both pages mapped, physically discontiguous).
		a.Mov(x86.R(x86.RDI), x86.I(dataVA+0xFFC))
		a.Mov(x86.R(x86.RAX), x86.I(0x1122334455667788))
		a.Mov(x86.M(x86.RDI, 0), x86.R(x86.RAX))
		a.Mov(x86.R(x86.RBX), x86.M(x86.RDI, 0))
		a.Ptlcall()
	})
	e := newEnv(t, code, false)
	e.run(t, 100)
	if e.ctx.Regs[uops.RegRBX] != 0x1122334455667788 {
		t.Fatalf("page-crossing round trip = %#x", e.ctx.Regs[uops.RegRBX])
	}
}

func TestKernelMemoryProtection(t *testing.T) {
	// Map a kernel-only page; user access must fault.
	const handlerVA = codeVA + 0x800
	code := asm(t, func(a *x86.Assembler) {
		a.Mov(x86.R(x86.RBX), x86.I(dataVA + 0x2000))
		a.Mov(x86.R(x86.RCX), x86.M(x86.RBX, 0))
		a.Ptlcall()
	})
	h := x86.NewAssembler(handlerVA)
	h.Pop(x86.R(x86.R10))
	h.Ptlcall()
	handler, _ := h.Bytes()
	e := newEnv(t, code, false)
	if err := e.as.Map(dataVA+0x2000, e.pm.AllocPage(), mem.PTEWritable); err != nil {
		t.Fatal(err)
	}
	e.ctx.WriteVirtBytes(handlerVA, handler)
	e.ctx.TrapEntry = handlerVA
	e.ctx.KernelRSP = stackTop - 256
	e.run(t, 100)
	if e.ctx.Regs[uops.RegR10] != vm.VecPF {
		t.Fatalf("vector = %d, want #PF", e.ctx.Regs[uops.RegR10])
	}
}
