module ptlsim

go 1.22
