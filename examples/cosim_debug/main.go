// cosim_debug demonstrates the self-debugging co-simulation feature
// (paper §2.3): the cycle accurate core is continuously validated
// against the functional reference engine, and a binary search over
// instruction counts isolates the first divergent instruction if the
// two ever disagree.
package main

import (
	"fmt"
	"os"

	"ptlsim/internal/core"
	"ptlsim/internal/cosim"
	"ptlsim/internal/guest"
	"ptlsim/internal/hv"
	"ptlsim/internal/kern"
	"ptlsim/internal/stats"
)

func main() {
	// A deterministic, timer-free guest so both engines follow the
	// same instruction trajectory.
	cs := guest.CorpusSpec{NFiles: 1, FileSize: 1024, Seed: 5, ChangeFraction: 0.4}
	build := func() (*hv.Domain, error) {
		spec, err := guest.RsyncBenchmark(cs, 4_000_000_000)
		if err != nil {
			return nil, err
		}
		spec.Tree = stats.NewTree()
		img, err := kern.Build(spec)
		if err != nil {
			return nil, err
		}
		return img.Domain, nil
	}

	fmt.Println("comparing the out-of-order core against the functional reference...")
	probe := cosim.MakeArchProbe(build, core.DefaultConfig())
	n, diag, err := cosim.FirstDivergence(20000, probe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if n < 0 {
		fmt.Println("no divergence in the first 20000 instructions: the cycle")
		fmt.Println("accurate core commits exactly the reference architectural state.")
	} else {
		fmt.Printf("first divergence at instruction %d: %s\n", n, diag)
		os.Exit(1)
	}

	// Show how the search zeroes in when a divergence DOES exist, using
	// a synthetic probe (a model bug that corrupts state at insn 1234).
	fmt.Println("\ndemonstrating the binary search against a synthetic bug at insn 1234:")
	probes := 0
	synthetic := func(n int64) (bool, string, error) {
		probes++
		fmt.Printf("  probe at %6d instructions -> ", n)
		if n < 1234 {
			fmt.Println("states match")
			return true, "", nil
		}
		fmt.Println("states DIVERGE")
		return false, "rbx: 0x2a vs 0x2b", nil
	}
	n, diag, _ = cosim.FirstDivergence(1_000_000, synthetic)
	fmt.Printf("isolated to instruction %d in %d probes (%s)\n", n, probes, diag)
}
