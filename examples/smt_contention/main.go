// smt_contention runs two SMT hardware threads hammering a shared
// counter with LOCK-prefixed read-modify-writes, showing the interlock
// controller (paper §4.4) arbitrating the line: no update is lost, and
// the lock-replay statistics expose the contention.
package main

import (
	"fmt"
	"os"

	"ptlsim/internal/bbcache"
	"ptlsim/internal/mem"
	"ptlsim/internal/ooo"
	"ptlsim/internal/stats"
	"ptlsim/internal/uops"
	"ptlsim/internal/vm"
	"ptlsim/internal/x86"
)

type smtSys struct{ stopped [2]bool }

func (s *smtSys) Hypercall(c *vm.Context) uops.Fault { return uops.FaultGP }
func (s *smtSys) Ptlcall(c *vm.Context) {
	s.stopped[c.ID] = true
	c.Running = false
}
func (s *smtSys) ReadTSC(c *vm.Context) uint64    { return 0 }
func (s *smtSys) Cpuid(c *vm.Context)             {}
func (s *smtSys) EventPending(c *vm.Context) bool { return false }

func main() {
	const codeVA, dataVA, stackVA = 0x400000, 0x600000, 0x7F0000
	const iterations = 5000

	a := x86.NewAssembler(codeVA)
	a.Mov(x86.R(x86.RDI), x86.I(dataVA))
	a.Mov(x86.R(x86.RCX), x86.I(iterations))
	a.While(func() x86.Cond {
		a.Cmp(x86.R(x86.RCX), x86.I(0))
		return x86.CondNE
	}, func() {
		a.Mov(x86.R(x86.RBX), x86.I(1))
		a.LockXadd(x86.M(x86.RDI, 0), x86.R(x86.RBX))
		a.Dec(x86.R(x86.RCX))
	})
	a.Ptlcall()
	code, err := a.Bytes()
	if err != nil {
		panic(err)
	}

	pm := mem.NewPhysMem()
	as := mem.NewAddressSpace(pm)
	flags := mem.PTEWritable | mem.PTEUser
	must(as.Map(codeVA, pm.AllocPage(), flags))
	must(as.Map(dataVA, pm.AllocPage(), flags))
	must(as.Map(stackVA, pm.AllocPage(), flags))
	must(as.Map(stackVA-0x4000, pm.AllocPage(), flags))

	machine := &vm.Machine{PM: pm}
	mkctx := func(id int) *vm.Context {
		ctx := vm.NewContext(machine, id)
		ctx.CR3 = as.CR3()
		ctx.RIP = codeVA
		ctx.Regs[uops.RegRSP] = uint64(stackVA) + 0x1000 - uint64(id)*0x4000
		return ctx
	}
	ctx0, ctx1 := mkctx(0), mkctx(1)
	if f := ctx0.WriteVirtBytes(codeVA, code); f != uops.FaultNone {
		panic(f)
	}

	sys := &smtSys{}
	tree := stats.NewTree()
	bbc := bbcache.New(1024, tree, "bb")
	coreModel := ooo.New(0, ooo.SMTConfig(2), []*vm.Context{ctx0, ctx1}, sys, bbc, tree, "smt")

	var cycles uint64
	for ; cycles < 50_000_000; cycles++ {
		if sys.stopped[0] && sys.stopped[1] {
			break
		}
		if err := coreModel.Cycle(cycles); err != nil {
			panic(err)
		}
	}

	counter, _ := ctx0.ReadVirt(dataVA, 8)
	fmt.Printf("two SMT threads, %d locked increments each\n", iterations)
	fmt.Printf("shared counter: %d (want %d) — %s\n", counter, 2*iterations,
		verdict(counter == 2*iterations))
	fmt.Printf("cycles: %d  committed insns: %d\n",
		cycles, tree.Lookup("smt.commit.insns").Value())
	fmt.Printf("interlock replays (lock contention): %d\n",
		tree.Lookup("smt.lock_replays").Value())
	if counter != 2*iterations {
		os.Exit(1)
	}
}

func verdict(ok bool) string {
	if ok {
		return "no lost updates"
	}
	return "LOST UPDATES"
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
