// Quickstart: assemble a small x86-64 program with the DSL, run it on
// the cycle accurate out-of-order core, and read the statistics — the
// smallest end-to-end use of the simulator.
package main

import (
	"fmt"
	"os"

	"ptlsim/internal/bbcache"
	"ptlsim/internal/mem"
	"ptlsim/internal/ooo"
	"ptlsim/internal/stats"
	"ptlsim/internal/uops"
	"ptlsim/internal/vm"
	"ptlsim/internal/x86"
)

// quickSys is a minimal system layer: ptlcall stops the run.
type quickSys struct{ done bool }

func (s *quickSys) Hypercall(c *vm.Context) uops.Fault { return uops.FaultGP }
func (s *quickSys) Ptlcall(c *vm.Context)              { s.done = true; c.Running = false }
func (s *quickSys) ReadTSC(c *vm.Context) uint64       { return 0 }
func (s *quickSys) Cpuid(c *vm.Context)                { c.Regs[uops.RegRAX] = 0 }
func (s *quickSys) EventPending(c *vm.Context) bool    { return false }

func main() {
	const codeVA, dataVA, stackVA = 0x400000, 0x600000, 0x7F0000

	// 1. Write a guest program: sum the bytes of a buffer.
	a := x86.NewAssembler(codeVA)
	a.Mov(x86.R(x86.RSI), x86.I(dataVA))
	a.Mov(x86.R(x86.RCX), x86.I(4096))
	a.Mov(x86.R(x86.RAX), x86.I(0))
	a.While(func() x86.Cond {
		a.Cmp(x86.R(x86.RCX), x86.I(0))
		return x86.CondNE
	}, func() {
		a.Movzx(x86.RDX, x86.M(x86.RSI, 0), 1)
		a.Add(x86.R(x86.RAX), x86.R(x86.RDX))
		a.Inc(x86.R(x86.RSI))
		a.Dec(x86.R(x86.RCX))
	})
	a.Ptlcall() // break out to the simulator
	code, err := a.Bytes()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// 2. Build a tiny guest: physical memory, page tables, loaded code.
	pm := mem.NewPhysMem()
	as := mem.NewAddressSpace(pm)
	flags := mem.PTEWritable | mem.PTEUser
	for off := uint64(0); off < uint64(len(code))+mem.PageSize; off += mem.PageSize {
		must(as.Map(codeVA+off, pm.AllocPage(), flags))
	}
	must(as.Map(dataVA, pm.AllocPage(), flags))
	must(as.Map(stackVA, pm.AllocPage(), flags))

	machine := &vm.Machine{PM: pm}
	ctx := vm.NewContext(machine, 0)
	ctx.CR3 = as.CR3()
	ctx.RIP = codeVA
	ctx.Regs[uops.RegRSP] = stackVA + 0x1000
	if f := ctx.WriteVirtBytes(codeVA, code); f != uops.FaultNone {
		panic(f)
	}
	// Fill the buffer with a known pattern: sum = 4096 * 7.
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = 7
	}
	if f := ctx.WriteVirtBytes(dataVA, buf); f != uops.FaultNone {
		panic(f)
	}

	// 3. Run on the out-of-order core, cycle by cycle.
	sys := &quickSys{}
	tree := stats.NewTree()
	bbc := bbcache.New(1024, tree, "bb")
	coreModel := ooo.New(0, ooo.DefaultConfig(), []*vm.Context{ctx}, sys, bbc, tree, "ooo")
	cycles := uint64(0)
	for ; !sys.done && cycles < 10_000_000; cycles++ {
		if err := coreModel.Cycle(cycles); err != nil {
			panic(err)
		}
	}

	// 4. Results.
	fmt.Printf("result: rax = %d (want %d)\n", ctx.Regs[uops.RegRAX], 4096*7)
	insns := tree.Lookup("ooo.commit.insns").Value()
	fmt.Printf("cycles: %d  instructions: %d  IPC: %.2f\n",
		cycles, insns, float64(insns)/float64(cycles))
	fmt.Printf("L1D: %d accesses, %d misses\n",
		tree.Lookup("ooo.cache.l1d.accesses").Value(),
		tree.Lookup("ooo.cache.l1d.misses").Value())
	fmt.Printf("branches: %d (%d mispredicted)\n",
		tree.Lookup("ooo.branches").Value(),
		tree.Lookup("ooo.mispredicts").Value())
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
