// rsync_fullsystem reproduces the paper's §5 evaluation at a reduced
// scale: it runs the rsync-over-ssh full-system benchmark twice — once
// on the K8 hardware-counter reference model ("native"), once on the
// cycle accurate out-of-order core configured like a K8 — and prints
// the Table 1 comparison plus the Figure 2 mode breakdown.
package main

import (
	"fmt"
	"os"

	"ptlsim/internal/experiments"
)

func main() {
	cfg := experiments.BenchScale()
	fmt.Println("running the full-system rsync benchmark on both engines...")
	res, err := experiments.RunTable1(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nbenchmark output: %s\n", res.SimConsole)
	fmt.Println("Table 1 (scaled):")
	res.WriteTable(os.Stdout)
	fmt.Printf("\ncycle breakdown (Figure 2 aggregate): user %.1f%%  kernel %.1f%%  idle %.1f%%\n",
		res.UserPct, res.KernelPct, res.IdlePct)
	fmt.Printf("a userspace-only simulator would not account for %.1f%% of all cycles (kernel+idle)\n",
		res.KernelPct+res.IdlePct)
	fmt.Printf("\nsimulation throughput: %.0f cycles/second (%d cycles in %v)\n",
		res.Throughput, res.SimCycles, res.SimWall)
}
