// sampling demonstrates statistical sampled simulation (paper §2.3):
// the full-system benchmark runs mostly in fast native mode, with the
// cycle accurate core engaged for short instruction windows — the
// technique the paper describes as "100 million instruction spans out
// of every billion" for rapid profiling, here scaled down.
package main

import (
	"fmt"
	"os"
	"time"

	"ptlsim/internal/core"
	"ptlsim/internal/cosim"
	"ptlsim/internal/guest"
	"ptlsim/internal/kern"
	"ptlsim/internal/stats"
)

func run(sample *cosim.SampleConfig) (time.Duration, int64, int64, string) {
	cs := guest.CorpusSpec{NFiles: 4, FileSize: 8192, Seed: 20070425, ChangeFraction: 0.25}
	tree := stats.NewTree()
	spec, err := guest.RsyncBenchmark(cs, 220_000)
	if err != nil {
		panic(err)
	}
	spec.Tree = tree
	img, err := kern.Build(spec)
	if err != nil {
		panic(err)
	}
	m := core.NewMachine(img.Domain, tree, core.DefaultConfig())
	start := time.Now()
	if sample == nil {
		m.SwitchMode(core.ModeSim)
		err = m.Run(0)
	} else {
		err = cosim.RunSampled(m, *sample, 0)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return time.Since(start),
		tree.Lookup("core0.commit.insns").Value(),
		tree.Lookup("seq0.insns").Value(),
		img.Domain.Console()
}

func main() {
	fmt.Println("full cycle accurate run...")
	fullWall, fullSim, _, console := run(nil)
	fmt.Printf("  %v, %d instructions simulated, output %q\n", fullWall, fullSim, console)

	fmt.Println("sampled run (20k simulated insns per 180k native)...")
	cfg := cosim.SampleConfig{SimInsns: 20_000, NativeInsns: 180_000}
	sampWall, sampSim, sampNative, console2 := run(&cfg)
	fmt.Printf("  %v, %d simulated + %d native instructions, output %q\n",
		sampWall, sampSim, sampNative, console2)

	if console != console2 {
		fmt.Println("ERROR: sampled run changed program behavior")
		os.Exit(1)
	}
	frac := float64(sampSim) / float64(sampSim+sampNative) * 100
	fmt.Printf("\nonly %.1f%% of instructions went through the detailed core;\n", frac)
	fmt.Printf("guest-visible behavior is identical (same console output),\n")
	fmt.Printf("and virtual time stayed continuous across every mode switch.\n")
}
